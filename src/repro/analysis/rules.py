"""The ``REPRO###`` rule catalogue.

Each rule protects one source-level invariant behind the repo's
determinism guarantees (DESIGN.md §12 has the full catalogue with the
PR each invariant came from).  Rules are deliberately small, pure AST
walks — no type inference, no data flow — so a finding is always
explainable by pointing at the flagged line.  False positives are
handled by per-rule ``paths``/``allow`` scoping in
``[tool.repro-lint]`` and by line pragmas
(``# repro-lint: disable=R00X``), never by weakening the rule.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.analysis.config import RuleConfig
from repro.analysis.diagnostics import Diagnostic

__all__ = ["Rule", "RuleContext", "ALL_RULES", "rule_catalog"]


@dataclass
class RuleContext:
    """Everything one rule needs to check one file."""

    path: str  # as reported in diagnostics
    tree: ast.Module
    source: str
    config: RuleConfig = field(default_factory=RuleConfig)


@dataclass(frozen=True)
class Rule:
    """One registered rule: code, one-line summary, checker."""

    code: str
    name: str
    summary: str
    check: Callable[[RuleContext], Iterator[Diagnostic]]


def _dotted(node: ast.expr) -> str:
    """``a.b.c`` for an attribute chain, ``a`` for a name, else ``""``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _diag(ctx: RuleContext, node: ast.AST, code: str, message: str) -> Diagnostic:
    return Diagnostic(
        path=ctx.path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0) + 1,
        code=code,
        message=message,
    )


def _keyword(call: ast.Call, name: str) -> ast.keyword | None:
    for kw in call.keywords:
        if kw.arg == name:
            return kw
    return None


def _is_const(node: ast.expr | None, value: object) -> bool:
    return isinstance(node, ast.Constant) and node.value is value


# ---------------------------------------------------------------------------
# R001 — unseeded RNG
# ---------------------------------------------------------------------------

#: numpy.random attributes that are seed plumbing, not global-state draws.
_NP_RANDOM_SAFE = frozenset(
    {
        "Generator",
        "BitGenerator",
        "SeedSequence",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "MT19937",
        "SFC64",
        "default_rng",
    }
)

#: Constructors that take an optional seed and are nondeterministic
#: (OS entropy) when called without one.
_SEEDABLE_CONSTRUCTORS = frozenset(
    {
        "random.Random",
        "np.random.default_rng",
        "numpy.random.default_rng",
        "np.random.SeedSequence",
        "numpy.random.SeedSequence",
        "np.random.PCG64",
        "numpy.random.PCG64",
    }
)


def _check_unseeded_rng(ctx: RuleContext) -> Iterator[Diagnostic]:
    """R001: module-global RNG state or seedless generator construction.

    ``random.random()`` / ``np.random.rand()`` draw from process-global
    state no seed discipline can reach; ``default_rng()`` /
    ``random.Random()`` without a seed pull OS entropy.  Either way the
    run is unrepeatable.  Use :mod:`repro.parallel.rng` streams.
    """
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted(node.func)
        if not dotted:
            continue
        unseeded = not node.args and not node.keywords or (
            len(node.args) == 1 and _is_const(node.args[0], None) and not node.keywords
        )
        if dotted in _SEEDABLE_CONSTRUCTORS:
            if unseeded:
                yield _diag(
                    ctx, node, "R001",
                    f"`{dotted}()` without a seed draws OS entropy; pass a seed "
                    "or use repro.parallel.rng streams",
                )
            continue
        root, _, attr = dotted.rpartition(".")
        if root == "random" and attr not in ("Random", "SystemRandom"):
            yield _diag(
                ctx, node, "R001",
                f"`{dotted}()` uses the process-global `random` state; "
                "use a seeded `random.Random` or repro.parallel.rng",
            )
        elif root in ("np.random", "numpy.random") and attr not in _NP_RANDOM_SAFE:
            yield _diag(
                ctx, node, "R001",
                f"`{dotted}()` uses numpy's global RNG state; "
                "use a seeded Generator from repro.parallel.rng",
            )


# ---------------------------------------------------------------------------
# R002 — wall-clock on deterministic paths
# ---------------------------------------------------------------------------

_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "date.today",
    }
)


def _check_wall_clock(ctx: RuleContext) -> Iterator[Diagnostic]:
    """R002: wall-clock reads inside deterministic algorithm packages.

    A time read that feeds evolutionary state breaks serial/parallel and
    resume bit-identity.  Telemetry-only reads are allowlisted by path
    in ``[tool.repro-lint.R002]`` or annotated with a pragma.
    """
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted(node.func)
        if dotted in _WALL_CLOCK:
            yield _diag(
                ctx, node, "R002",
                f"wall-clock `{dotted}()` on a deterministic path; results must "
                "be a function of (instance, config, seed) only",
            )


# ---------------------------------------------------------------------------
# R003 — unordered iteration feeding ordered logic
# ---------------------------------------------------------------------------

_DICT_VIEWS = frozenset({"values", "keys", "items"})


def _iter_exprs(tree: ast.Module) -> Iterator[ast.expr]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node.iter
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for gen in node.generators:
                yield gen.iter


def _check_unordered_iteration(ctx: RuleContext) -> Iterator[Diagnostic]:
    """R003: iterating a set, or a dict view, in population logic.

    Set order is salted per process; even dict views (insertion-ordered)
    hide the ordering contract population logic depends on — resume and
    serial/parallel equality need that order explicit (``sorted(...)``
    or a list), or a pragma stating why the insertion order is itself
    deterministic.
    """
    for expr in _iter_exprs(ctx.tree):
        if isinstance(expr, (ast.Set, ast.SetComp)):
            yield _diag(
                ctx, expr, "R003",
                "iteration over a set literal: order is hash-salted per process",
            )
        elif isinstance(expr, ast.Call):
            dotted = _dotted(expr.func)
            if dotted in ("set", "frozenset"):
                yield _diag(
                    ctx, expr, "R003",
                    f"iteration over `{dotted}(...)`: order is hash-salted per "
                    "process; sort before iterating",
                )
            elif (
                isinstance(expr.func, ast.Attribute)
                and expr.func.attr in _DICT_VIEWS
                and not expr.args
            ):
                yield _diag(
                    ctx, expr, "R003",
                    f"iteration over `.{expr.func.attr}()` feeding ordered logic: "
                    "make the order explicit (sorted/list) or pragma why the "
                    "insertion order is deterministic",
                )


# ---------------------------------------------------------------------------
# R004 — float equality on fitness values
# ---------------------------------------------------------------------------

_FLOATY_TOKENS = ("fitness", "gap", "revenue", "objective")


def _floaty_name(node: ast.expr) -> str | None:
    """The identifier if ``node`` names a fitness-like quantity."""
    if isinstance(node, ast.Attribute):
        name = node.attr
    elif isinstance(node, ast.Name):
        name = node.id
    else:
        return None
    lowered = name.lower()
    if any(token in lowered for token in _FLOATY_TOKENS):
        return name
    return None


def _check_float_equality(ctx: RuleContext) -> Iterator[Diagnostic]:
    """R004: ``==``/``!=`` on fitness/gap-valued expressions.

    Fitness and %-gap values are accumulated floats; exact equality on
    them silently diverges across summation orders.  Compare with a
    tolerance (``math.isclose``/``np.isclose``) or on the decision
    variables instead.  Comparisons against string/None sentinels are
    exempt (those are mode switches, not float comparisons).
    """
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Compare):
            continue
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            continue
        operands = [node.left, *node.comparators]
        names = [n for n in map(_floaty_name, operands) if n]
        if not names:
            continue
        if any(
            isinstance(o, ast.Constant) and (o.value is None or isinstance(o.value, str))
            for o in operands
        ):
            continue
        yield _diag(
            ctx, node, "R004",
            f"float equality on `{names[0]}`: use a tolerance "
            "(math.isclose / np.isclose) or compare decision variables",
        )


# ---------------------------------------------------------------------------
# R005 — mutable default arguments
# ---------------------------------------------------------------------------

_MUTABLE_CALLS = frozenset({"list", "dict", "set", "defaultdict", "Counter", "OrderedDict"})


def _check_mutable_defaults(ctx: RuleContext) -> Iterator[Diagnostic]:
    """R005: mutable default argument values.

    A mutable default is shared across every call — state leaks between
    runs, which is exactly the cross-run coupling the determinism tests
    exist to rule out.  Default to ``None`` and construct inside.
    """
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        defaults = [*node.args.defaults, *node.args.kw_defaults]
        for default in defaults:
            if default is None:
                continue
            mutable = isinstance(
                default, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
            ) or (
                isinstance(default, ast.Call)
                and _dotted(default.func).rpartition(".")[2] in _MUTABLE_CALLS
            )
            if mutable:
                yield _diag(
                    ctx, default, "R005",
                    "mutable default argument is shared across calls; "
                    "default to None and construct inside",
                )


# ---------------------------------------------------------------------------
# R006 — fork-context / bare multiprocessing
# ---------------------------------------------------------------------------

_BARE_MP = frozenset(
    {
        "multiprocessing.Pool",
        "multiprocessing.Process",
        "multiprocessing.Queue",
        "multiprocessing.SimpleQueue",
        "multiprocessing.Manager",
        "mp.Pool",
        "mp.Process",
        "mp.Queue",
        "os.fork",
    }
)


def _check_unsafe_multiprocessing(ctx: RuleContext) -> Iterator[Diagnostic]:
    """R006: process management outside the spawn-context helpers.

    Bare ``multiprocessing`` objects inherit the platform default start
    method — ``fork`` on Linux, which duplicates RNG state, locks and
    open sockets into children.  All process fan-out must go through the
    spawn-context helpers in :mod:`repro.parallel`.
    """
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted(node.func)
        if dotted in _BARE_MP:
            yield _diag(
                ctx, node, "R006",
                f"bare `{dotted}(...)` inherits the platform start method "
                "(fork on Linux); use the spawn-context helpers in repro.parallel",
            )
        elif dotted.endswith("get_context") and dotted.partition(".")[0] in (
            "multiprocessing",
            "mp",
        ):
            method = node.args[0] if node.args else _keyword(node, "method")
            method = method.value if isinstance(method, ast.keyword) else method
            if method is None or (
                isinstance(method, ast.Constant) and method.value != "spawn"
            ):
                yield _diag(
                    ctx, node, "R006",
                    "multiprocessing context must be explicit 'spawn' "
                    "(fork duplicates RNG state, locks and sockets)",
                )
        elif dotted.rpartition(".")[2] == "ProcessPoolExecutor":
            if _keyword(node, "mp_context") is None:
                yield _diag(
                    ctx, node, "R006",
                    "ProcessPoolExecutor without mp_context defaults to fork "
                    "on Linux; pass a spawn context (or use repro.parallel)",
                )


# ---------------------------------------------------------------------------
# R007 — non-canonical JSON in serialization modules
# ---------------------------------------------------------------------------

_JSON_MODULE_HINT = "json"


def _check_non_canonical_json(ctx: RuleContext) -> Iterator[Diagnostic]:
    """R007: ``json.dump(s)`` without ``sort_keys=True`` in persistence code.

    Checkpoints, registry artifacts and wire messages are content-addressed
    or checksummed; a non-canonical dump makes byte-level identity depend
    on dict construction order, which silently shifts under refactors.
    """
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
            continue
        if node.func.attr not in ("dump", "dumps"):
            continue
        base = _dotted(node.func.value)
        if _JSON_MODULE_HINT not in base.rpartition(".")[2]:
            continue
        sort_keys = _keyword(node, "sort_keys")
        if sort_keys is None or not _is_const(sort_keys.value, True):
            yield _diag(
                ctx, node, "R007",
                f"`{base}.{node.func.attr}` without sort_keys=True: persisted "
                "JSON must be canonical (checksums/content addresses depend on it)",
            )


# ---------------------------------------------------------------------------
# R008 — raising observer hooks
# ---------------------------------------------------------------------------

_OBSERVER_HOOKS = frozenset(
    {
        "on_init",
        "on_record",
        "on_generation_end",
        "on_migration",
        "on_archive",
        "on_run_end",
    }
)


def _check_observer_raise(ctx: RuleContext) -> Iterator[Diagnostic]:
    """R008: ``raise`` inside an engine observer hook.

    Observer exceptions abort the run mid-generation; the engine's abort
    protocol then fires ``on_run_end(aborted=True)`` and re-raises — but
    an observer that raises for control flow bypasses the ledger and
    checkpoint discipline.  Use ``event.loop.request_stop()`` instead;
    re-raising inside an ``except`` cleanup block is exempt.
    """
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if node.name not in _OBSERVER_HOOKS:
            continue
        handler_spans: list[tuple[int, int]] = [
            (h.lineno, max(getattr(h, "end_lineno", h.lineno), h.lineno))
            for h in (n for n in ast.walk(node) if isinstance(n, ast.ExceptHandler))
        ]
        for stmt in ast.walk(node):
            if not isinstance(stmt, ast.Raise):
                continue
            if stmt.exc is None:
                continue  # bare re-raise inside except: propagating, fine
            in_handler = any(lo <= stmt.lineno <= hi for lo, hi in handler_spans)
            if in_handler:
                continue
            yield _diag(
                ctx, stmt, "R008",
                f"observer hook `{node.name}` raises outside the engine abort "
                "protocol; use event.loop.request_stop() for control flow",
            )


# ---------------------------------------------------------------------------
# R009 — unpicklable executor payloads
# ---------------------------------------------------------------------------

_SUBMIT_METHODS = frozenset({"submit", "apply_async", "map_async", "starmap_async"})


def _check_pickled_closures(ctx: RuleContext) -> Iterator[Diagnostic]:
    """R009: lambdas handed to pickle or executor dispatch.

    Lambdas and local closures don't pickle; they cross the process
    boundary only by accident (serial fallback) and then explode the
    first time a real pool is configured.  Ship module-level functions
    plus data (see ``repro.bcpop.evaluate``'s spawn-safe payloads).
    """
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted(node.func)
        has_lambda = any(isinstance(a, ast.Lambda) for a in node.args)
        if not has_lambda:
            continue
        if dotted.rpartition(".")[2] in ("dumps", "dump") and "pickle" in dotted:
            yield _diag(
                ctx, node, "R009",
                "pickling a lambda always fails; executor payloads must be "
                "module-level functions plus data",
            )
        elif isinstance(node.func, ast.Attribute) and (
            node.func.attr in _SUBMIT_METHODS
            or (
                node.func.attr == "map"
                and any(
                    hint in _dotted(node.func.value).lower()
                    for hint in ("executor", "pool")
                )
            )
        ):
            yield _diag(
                ctx, node, "R009",
                f"lambda passed to `.{node.func.attr}`: not spawn-safe "
                "(lambdas don't pickle); use a module-level function",
            )


# ---------------------------------------------------------------------------
# R010 — swallowed KeyboardInterrupt
# ---------------------------------------------------------------------------


def _handler_reraises(handler: ast.ExceptHandler) -> bool:
    return any(isinstance(n, ast.Raise) for n in ast.walk(handler))


def _check_swallowed_interrupt(ctx: RuleContext) -> Iterator[Diagnostic]:
    """R010: bare ``except:`` / ``except BaseException:`` that never raises.

    A worker loop that converts ``KeyboardInterrupt``/``SystemExit`` into
    a return value cannot be shut down: Ctrl-C becomes just another task
    result.  Catch ``Exception``, or re-raise on the ``BaseException``
    path (the supervised executor's protocol).
    """
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        types = (
            node.type.elts if isinstance(node.type, ast.Tuple)
            else [node.type] if node.type is not None else [None]
        )
        catches_base = any(
            t is None or _dotted(t).rpartition(".")[2] == "BaseException" for t in types
        )
        if catches_base and not _handler_reraises(node):
            label = "bare `except:`" if node.type is None else "`except BaseException`"
            yield _diag(
                ctx, node, "R010",
                f"{label} without re-raise swallows KeyboardInterrupt/SystemExit; "
                "catch Exception or re-raise",
            )


# ---------------------------------------------------------------------------
# R011 — event-loop hygiene in the serving layer
# ---------------------------------------------------------------------------

_TASK_SPAWNERS = frozenset({"create_task", "ensure_future"})

#: Calls that block the calling thread — inside ``async def`` they stall
#: the whole event loop (every connection, the health loop, everything).
_BLOCKING_IN_ASYNC = frozenset(
    {
        "time.sleep",
        "socket.create_connection",
        "socket.getaddrinfo",
        "socket.gethostbyname",
        "socket.gethostbyaddr",
    }
)


def _check_event_loop_hygiene(ctx: RuleContext) -> Iterator[Diagnostic]:
    """R011: fire-and-forget tasks, and blocking calls inside ``async def``.

    Two ways an asyncio server quietly loses its robustness guarantees:

    * ``asyncio.create_task(...)`` / ``ensure_future(...)`` as a bare
      expression statement — the event loop holds tasks *weakly*, so an
      unretained task can be garbage-collected mid-flight and its
      exceptions are never observed.  A supervision or demux task that
      silently disappears is a hung shard nobody detects.  Retain the
      handle (``self._task = ...`` or a task set with a done-callback).
    * ``time.sleep`` / synchronous socket calls inside ``async def`` —
      they block the loop thread, freezing every connection and the
      health prober with it.  Use ``await asyncio.sleep`` /
      ``asyncio.open_connection`` / ``run_in_executor``.
    """
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
            attr = _dotted(node.value.func).rpartition(".")[2]
            if attr in _TASK_SPAWNERS:
                yield _diag(
                    ctx, node, "R011",
                    f"fire-and-forget `{attr}(...)`: the loop only holds tasks "
                    "weakly — retain the handle or the task (and its "
                    "exceptions) can vanish mid-flight",
                )
    for func in ast.walk(ctx.tree):
        if not isinstance(func, ast.AsyncFunctionDef):
            continue
        for call in _calls_on_loop_thread(func):
            dotted = _dotted(call.func)
            if dotted in _BLOCKING_IN_ASYNC:
                yield _diag(
                    ctx, call, "R011",
                    f"blocking `{dotted}(...)` inside `async def {func.name}` "
                    "stalls the event loop; use the asyncio equivalent or "
                    "run_in_executor",
                )


def _calls_on_loop_thread(func: ast.AsyncFunctionDef) -> Iterator[ast.Call]:
    """Calls lexically on ``func``'s own async frames — nested *sync*
    functions are excluded (they may legitimately run in an executor)."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.Lambda)):
            continue  # sync scope: judged where it is *called from*
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

ALL_RULES: tuple[Rule, ...] = (
    Rule("R001", "unseeded-rng", "module-global or seedless RNG", _check_unseeded_rng),
    Rule("R002", "wall-clock", "wall-clock read on a deterministic path", _check_wall_clock),
    Rule(
        "R003",
        "unordered-iteration",
        "set/dict-view iteration feeding ordered logic",
        _check_unordered_iteration,
    ),
    Rule("R004", "float-equality", "== / != on fitness or gap values", _check_float_equality),
    Rule("R005", "mutable-default", "mutable default argument", _check_mutable_defaults),
    Rule(
        "R006",
        "unsafe-multiprocessing",
        "fork-context or bare multiprocessing",
        _check_unsafe_multiprocessing,
    ),
    Rule(
        "R007",
        "non-canonical-json",
        "json dump without sort_keys in persistence code",
        _check_non_canonical_json,
    ),
    Rule("R008", "observer-raise", "raise inside an engine observer hook", _check_observer_raise),
    Rule("R009", "pickled-closure", "lambda in a pickled executor payload", _check_pickled_closures),
    Rule(
        "R010",
        "swallowed-interrupt",
        "bare/BaseException handler without re-raise",
        _check_swallowed_interrupt,
    ),
    Rule(
        "R011",
        "event-loop-hygiene",
        "fire-and-forget task or blocking call in async code",
        _check_event_loop_hygiene,
    ),
)


def rule_catalog() -> dict[str, Rule]:
    return {rule.code: rule for rule in ALL_RULES}
