"""The mypy-strict baseline ratchet (``typing-baseline.txt``).

Strict typing is gated on :mod:`repro.core`, :mod:`repro.parallel`,
:mod:`repro.serve`, :mod:`repro.analysis`, :mod:`repro.gp` and
:mod:`repro.lp` (the ``[tool.mypy]`` table in pyproject).  Because a
strict gate bootstrapped onto an existing codebase needs an escape
valve, suppressions are *budgeted* instead of banned: the baseline file
records how many ``# type: ignore`` / ``# mypy: ignore-errors`` markers
the strict packages contain, and this gate fails whenever the count
**grows**.  Shrinking the count is a warning to ratchet the baseline
down (``--update`` rewrites it), so the budget can only ever move
toward zero.

The optional ``--mypy`` step runs mypy itself when it is installed (CI
installs it; the dev container may not) and applies the same ratchet to
the reported error count *if* the baseline carries a ``mypy-errors``
line — the error budget activates the first time ``--update`` runs in
an environment that has mypy.

Usage::

    python -m repro.analysis.typing_gate --check          # CI gate
    python -m repro.analysis.typing_gate --check --mypy   # + mypy ratchet
    python -m repro.analysis.typing_gate --update         # ratchet down
"""

from __future__ import annotations

import argparse
import re
import subprocess
import sys
from pathlib import Path
from typing import Sequence

__all__ = ["count_ignores", "load_baseline", "main"]

#: Packages under the strict gate (mirrors [tool.mypy] in pyproject).
STRICT_PACKAGES = (
    "repro/core",
    "repro/parallel",
    "repro/serve",
    "repro/analysis",
    "repro/gp",
    "repro/lp",
)

BASELINE_FILE = "typing-baseline.txt"

_IGNORE_MARKER = re.compile(r"#\s*(type:\s*ignore|mypy:\s*ignore-errors)")
_BASELINE_LINE = re.compile(r"^(?P<key>[\w./-]+)\s+(?P<count>\d+)$")


def count_ignores(src_root: Path) -> dict[str, int]:
    """Per-file ``type: ignore`` marker counts inside the strict packages."""
    counts: dict[str, int] = {}
    for package in STRICT_PACKAGES:
        for file in sorted((src_root / package).rglob("*.py")):
            n = sum(
                1
                for line in file.read_text(encoding="utf-8").splitlines()
                if _IGNORE_MARKER.search(line)
            )
            if n:
                counts[file.relative_to(src_root).as_posix()] = n
    return counts


def load_baseline(path: Path) -> dict[str, int]:
    """Parse the baseline: ``<key> <count>`` lines, ``#`` comments."""
    budget: dict[str, int] = {}
    if not path.is_file():
        return budget
    for raw in path.read_text(encoding="utf-8").splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        match = _BASELINE_LINE.match(line)
        if match is None:
            raise ValueError(f"{path}: malformed baseline line: {raw!r}")
        budget[match.group("key")] = int(match.group("count"))
    return budget


def write_baseline(path: Path, ignores: dict[str, int], mypy_errors: int | None) -> None:
    lines = [
        "# Typing suppression budget for the mypy-strict packages",
        f"# ({', '.join(STRICT_PACKAGES)}).",
        "# The gate (python -m repro.analysis.typing_gate --check) fails when",
        "# any count grows; regenerate with --update only to ratchet DOWN.",
        f"total-ignores {sum(ignores.values())}",
    ]
    if mypy_errors is not None:
        lines.append(f"mypy-errors {mypy_errors}")
    lines.extend(f"{key} {count}" for key, count in sorted(ignores.items()))
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


def run_mypy(repo_root: Path) -> int | None:
    """mypy error count for the strict packages, ``None`` if unavailable."""
    try:
        import mypy  # noqa: F401
    except ImportError:
        return None
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", str(repo_root / "pyproject.toml")],
        capture_output=True,
        text=True,
        cwd=repo_root,
    )
    errors = sum(
        1 for line in proc.stdout.splitlines() if ": error:" in line
    )
    if proc.returncode not in (0, 1):  # 2+ = mypy crashed / bad config
        sys.stderr.write(proc.stdout + proc.stderr)
        raise RuntimeError(f"mypy exited with {proc.returncode}")
    return errors


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="typing-gate", description="mypy-strict suppression-budget ratchet"
    )
    parser.add_argument("--repo-root", default=".", help="repository root")
    parser.add_argument("--check", action="store_true", help="fail if any budget grew")
    parser.add_argument(
        "--mypy", action="store_true",
        help="also run mypy (if installed) and ratchet its error count",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite the baseline from the current tree (ratchet down)",
    )
    args = parser.parse_args(argv)

    repo_root = Path(args.repo_root).resolve()
    src_root = repo_root / "src"
    baseline_path = repo_root / BASELINE_FILE

    ignores = count_ignores(src_root)
    total = sum(ignores.values())
    mypy_errors = run_mypy(repo_root) if args.mypy else None

    if args.update:
        write_baseline(baseline_path, ignores, mypy_errors)
        print(f"typing-gate: baseline written ({total} ignores"
              + (f", {mypy_errors} mypy errors" if mypy_errors is not None else "")
              + ")")
        return 0

    budget = load_baseline(baseline_path)
    failures: list[str] = []
    warnings: list[str] = []

    allowed_total = budget.get("total-ignores", 0)
    if total > allowed_total:
        failures.append(
            f"type-ignore count grew: {total} > budget {allowed_total} "
            "(remove the new suppressions, or justify + --update)"
        )
    elif total < allowed_total:
        warnings.append(
            f"type-ignore count shrank ({total} < {allowed_total}): "
            "run --update to ratchet the budget down"
        )
    for key, count in sorted(ignores.items()):
        allowed = budget.get(key, 0)
        if count > allowed:
            failures.append(f"{key}: {count} ignores > budget {allowed}")

    if args.mypy:
        if mypy_errors is None:
            warnings.append("mypy not installed here; error ratchet checked in CI only")
        elif "mypy-errors" in budget:
            if mypy_errors > budget["mypy-errors"]:
                failures.append(
                    f"mypy error count grew: {mypy_errors} > budget {budget['mypy-errors']}"
                )
            elif mypy_errors < budget["mypy-errors"]:
                warnings.append(
                    f"mypy errors shrank ({mypy_errors} < {budget['mypy-errors']}): "
                    "run --update --mypy to ratchet down"
                )
        else:
            warnings.append(
                f"mypy reports {mypy_errors} errors but the baseline has no "
                "mypy-errors budget yet; run --update --mypy to activate the ratchet"
            )

    for warning in warnings:
        print(f"typing-gate: warning: {warning}")
    for failure in failures:
        print(f"typing-gate: FAIL: {failure}", file=sys.stderr)
    if not failures:
        print(f"typing-gate: ok ({total} ignores within budget {allowed_total})")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
