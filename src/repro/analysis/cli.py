"""``repro-lint`` — the determinism & parallel-safety linter CLI.

Usage::

    repro-lint src/                  # lint a tree, ruff-style output
    repro-lint --format json src/    # machine-readable findings
    repro-lint --format sarif src/   # GitHub code-scanning upload
    repro-lint --list-rules          # the R001..R010 catalogue
    repro-lint --select R001,R007 f.py
    repro-lint --flow src/repro      # delegate to repro-flow (F-rules)

Exit codes: 0 clean, 1 findings, 2 parse/usage errors.  Configuration
is read from the nearest ``pyproject.toml``'s ``[tool.repro-lint]``
table (``--config`` overrides the search).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.config import find_pyproject, load_config
from repro.analysis.engine import LintEngine
from repro.analysis.rules import ALL_RULES

__all__ = ["main"]

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Static determinism & parallel-safety checks (rules R001-R010).",
    )
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text", dest="format_",
        help="diagnostic output format (default: text)",
    )
    parser.add_argument(
        "--config", metavar="PYPROJECT",
        help="explicit pyproject.toml (default: nearest one above the first path)",
    )
    parser.add_argument(
        "--select", metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    parser.add_argument(
        "--statistics", action="store_true",
        help="append a per-rule findings count summary",
    )
    # Documentation only: `--flow` is intercepted in main() before parsing
    # and delegates every remaining argument to repro-flow.
    parser.add_argument(
        "--flow", action="store_true",
        help="run the whole-program dataflow analyzer (repro-flow) instead",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    arguments = list(sys.argv[1:] if argv is None else argv)
    if "--flow" in arguments:
        # Delegate to the whole-program analyzer; every other flag is
        # interpreted by repro-flow (same exit-code contract).
        from repro.analysis.flow.cli import main as flow_main

        arguments.remove("--flow")
        return flow_main(arguments)
    try:
        return _run(arguments)
    except BrokenPipeError:
        # Downstream closed early (`repro-lint ... | head`); exiting
        # through the normal path would just traceback on stream flush.
        sys.stderr.close()
        return EXIT_CLEAN


def _run(argv: Sequence[str] | None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.code}  {rule.name:24s} {rule.summary}")
        return EXIT_CLEAN

    if not args.paths:
        print("repro-lint: no paths given (try `repro-lint src/`)", file=sys.stderr)
        return EXIT_ERROR

    if args.config:
        pyproject = Path(args.config)
        if not pyproject.is_file():
            print(f"repro-lint: config not found: {pyproject}", file=sys.stderr)
            return EXIT_ERROR
    else:
        pyproject = find_pyproject(Path(args.paths[0]).resolve())

    select = None
    if args.select:
        select = [code.strip() for code in args.select.split(",") if code.strip()]
        known = {rule.code for rule in ALL_RULES}
        unknown = sorted(set(select) - known)
        if unknown:
            print(f"repro-lint: unknown rule codes: {', '.join(unknown)}", file=sys.stderr)
            return EXIT_ERROR

    engine = LintEngine(config=load_config(pyproject), select=select)
    findings = engine.lint_paths(args.paths)

    if args.format_ == "sarif":
        from repro.analysis.sarif import render_sarif

        summaries = {rule.code: rule.summary for rule in ALL_RULES}
        print(render_sarif(findings, "repro-lint", summaries))
    elif args.format_ == "json":
        print(
            json.dumps(
                {
                    "findings": [d.to_json() for d in findings],
                    "parse_errors": [
                        {"path": e.path, "message": e.message}
                        for e in engine.parse_errors
                    ],
                },
                indent=1,
                sort_keys=True,
            )
        )
    else:
        for diagnostic in findings:
            print(diagnostic.format())
        for error in engine.parse_errors:
            print(error.format(), file=sys.stderr)
        if args.statistics and findings:
            counts: dict[str, int] = {}
            for diagnostic in findings:
                counts[diagnostic.code] = counts.get(diagnostic.code, 0) + 1
            print("--")
            for code in sorted(counts):
                print(f"{code}: {counts[code]}")

    if engine.parse_errors:
        return EXIT_ERROR
    return EXIT_FINDINGS if findings else EXIT_CLEAN


if __name__ == "__main__":
    sys.exit(main())
