"""``python -m repro.analysis`` runs the repro-lint CLI."""

import sys

from repro.analysis.cli import main

if __name__ == "__main__":
    sys.exit(main())
