"""Feasibility repair and redundancy pruning for binary covering vectors.

COBRA's lower-level population is a set of raw binary vectors evolved with
two-point crossover and swap mutation; offspring routinely under-cover the
demand.  The repair operator completes them greedily (Chvátal order) and
prunes redundancy, which is the standard treatment in evolutionary covering
solvers and keeps the baseline competitive in good faith.
"""

from __future__ import annotations

import numpy as np

from repro.covering.instance import CoveringInstance

__all__ = ["repair_cover", "prune_redundant"]


def prune_redundant(instance: CoveringInstance, selected: np.ndarray) -> np.ndarray:
    """Drop selected bundles that are not needed, most expensive first.

    Returns a new boolean vector; the input is not modified.  The result is
    feasible whenever the input is, and minimal in the sense that no single
    remaining bundle can be removed.
    """
    sel = np.asarray(selected, dtype=bool).copy()
    coverage = instance.q[:, sel].sum(axis=1)
    order = np.flatnonzero(sel)
    order = order[np.argsort(-instance.costs[order], kind="stable")]
    demand = instance.demand
    for j in order:
        slack_ok = coverage - instance.q[:, j] >= demand - 1e-9
        if slack_ok.all():
            sel[j] = False
            coverage -= instance.q[:, j]
    return sel


def repair_cover(
    instance: CoveringInstance,
    selected: np.ndarray,
    prune: bool = True,
    order: str = "chvatal",
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Make a binary vector feasible (if possible) and optionally minimal.

    Missing coverage is filled by repeatedly adding a useful bundle until
    every requirement is met.  ``order`` picks the completion rule:

    * ``"chvatal"`` — cost per useful unit (strong, heuristic-informed);
    * ``"random"``  — uniformly random useful bundle (needs ``rng``); this
      is the *neutral* repair used for the COBRA baseline so that the
      baseline's solution quality comes from its own evolution, not from a
      hand-written heuristic smuggled in through repair (DESIGN.md §5);
    * ``"cost"``    — cheapest useful bundle first.

    If the instance is uncoverable the all-selected vector is returned
    (still infeasible — callers detect this via
    :meth:`CoveringInstance.is_feasible`).
    """
    sel = np.asarray(selected, dtype=bool).copy()
    if sel.shape != (instance.n_bundles,):
        raise ValueError(
            f"selection shape {sel.shape} != ({instance.n_bundles},)"
        )
    if order == "random" and rng is None:
        raise ValueError("order='random' requires an rng")
    if order not in ("chvatal", "random", "cost"):
        raise ValueError(f"unknown repair order {order!r}")
    residual = np.clip(instance.demand - instance.q[:, sel].sum(axis=1), 0.0, None)
    while residual.max(initial=0.0) > 1e-9:
        useful = np.minimum(instance.q, residual[:, None]).sum(axis=0)
        useful[sel] = 0.0
        if useful.max(initial=0.0) <= 1e-12:
            sel[:] = True  # uncoverable: saturate so the caller can tell
            return sel
        if order == "chvatal":
            score = np.where(
                useful > 1e-12, instance.costs / np.maximum(useful, 1e-12), np.inf
            )
            j = int(np.argmin(score))
        elif order == "cost":
            score = np.where(useful > 1e-12, instance.costs, np.inf)
            j = int(np.argmin(score))
        else:  # random
            candidates = np.flatnonzero(useful > 1e-12)
            j = int(candidates[rng.integers(candidates.size)])
        sel[j] = True
        np.subtract(residual, instance.q[:, j], out=residual)
        np.clip(residual, 0.0, None, out=residual)
    if prune:
        sel = prune_redundant(instance, sel)
    return sel
