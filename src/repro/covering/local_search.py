"""Local-search improvement for covering solutions.

Not part of CARBON's core loop (the paper's heuristics are pure greedy),
but used (a) to tighten COBRA's repaired lower-level individuals so the
baseline is not handicapped, and (b) in ablation benches that quantify how
much of the gap a cheap post-pass could recover.
"""

from __future__ import annotations

import numpy as np

from repro.covering.instance import CoveringInstance
from repro.covering.repair import prune_redundant

__all__ = ["improve_by_swap"]


def improve_by_swap(
    instance: CoveringInstance,
    selected: np.ndarray,
    max_rounds: int = 3,
) -> np.ndarray:
    """First-improvement 1-out/1-in swap descent.

    Repeatedly tries removing one selected bundle and, if coverage breaks,
    re-covering with the single cheapest bundle that restores feasibility;
    accepts the move when total cost drops.  Ends at a local optimum or
    after ``max_rounds`` full passes.  Input must be feasible.
    """
    sel = np.asarray(selected, dtype=bool).copy()
    if not instance.is_feasible(sel):
        raise ValueError("improve_by_swap requires a feasible starting point")
    costs = instance.costs
    q = instance.q
    demand = instance.demand
    for _ in range(max_rounds):
        improved = False
        coverage = q[:, sel].sum(axis=1)
        for j in np.flatnonzero(sel):
            cov_without = coverage - q[:, j]
            deficit = demand - cov_without
            if deficit.max(initial=0.0) <= 1e-9:
                # Pure removal (redundant bundle).
                sel[j] = False
                coverage = cov_without
                improved = True
                continue
            # Candidates that alone repair the deficit and are cheaper.
            candidates = np.flatnonzero(~sel)
            candidates = candidates[candidates != j]
            if candidates.size == 0:
                continue
            fills = np.all(
                q[:, candidates] >= deficit[:, None] - 1e-9, axis=0
            )
            viable = candidates[fills]
            viable = viable[costs[viable] < costs[j] - 1e-12]
            if viable.size:
                k = int(viable[np.argmin(costs[viable])])
                sel[j] = False
                sel[k] = True
                coverage = cov_without + q[:, k]
                improved = True
        if not improved:
            break
    return prune_redundant(instance, sel)
