"""Exact solvers for small covering instances.

Used by tests to certify that %-gap values are what they claim to be (the
true integer optimum lies between ``LB(x)`` and any heuristic value), and
by the Fig-1/Program-3 style worked examples.  Two methods:

* exhaustive enumeration over all 2^n selections (bitmask-vectorized) for
  ``n <= enum_limit``,
* LP-based depth-first branch-and-bound with Chvátal warm start for larger
  instances (practical to ~60 bundles).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.covering.greedy import greedy_cover
from repro.covering.heuristics import chvatal_score
from repro.covering.instance import CoveringInstance, CoverSolution
from repro.lp.relaxation import solve_relaxation

__all__ = ["solve_exact", "ExactStats"]

_ENUM_LIMIT = 22


@dataclass
class ExactStats:
    """Search effort diagnostics attached to ``CoverSolution.meta``."""

    nodes: int = 0
    method: str = ""


def _solve_enumeration(instance: CoveringInstance) -> CoverSolution:
    """Vectorized exhaustive search: evaluate all 2^n selections at once
    (blocks of 2^16 masks keep memory bounded)."""
    n = instance.n_bundles
    total = 1 << n
    bit_matrix_cols = np.arange(n)
    best_cost = np.inf
    best_mask = None
    block = 1 << 16
    for start in range(0, total, block):
        masks = np.arange(start, min(start + block, total), dtype=np.uint64)
        # (n_masks, n) boolean selection table
        sel = ((masks[:, None] >> bit_matrix_cols[None, :].astype(np.uint64)) & 1).astype(bool)
        coverage = sel @ instance.q.T  # (n_masks, n_services)
        feasible = np.all(coverage >= instance.demand[None, :] - 1e-9, axis=1)
        if not feasible.any():
            continue
        costs = sel[feasible] @ instance.costs
        idx = int(np.argmin(costs))
        if costs[idx] < best_cost:
            best_cost = float(costs[idx])
            best_mask = sel[feasible][idx].copy()
    if best_mask is None:
        return CoverSolution(
            selected=np.zeros(n, dtype=bool), cost=0.0, feasible=False,
            iterations=total, meta={"stats": ExactStats(total, "enumeration")},
        )
    return CoverSolution(
        selected=best_mask, cost=best_cost, feasible=True,
        iterations=total, meta={"stats": ExactStats(total, "enumeration")},
    )


def _solve_branch_and_bound(
    instance: CoveringInstance, max_nodes: int
) -> CoverSolution:
    """DFS branch-and-bound; branches on the most fractional LP variable."""
    n = instance.n_bundles
    warm = greedy_cover(instance, chvatal_score)
    if not warm.feasible:
        return CoverSolution(
            selected=np.zeros(n, dtype=bool), cost=0.0, feasible=False,
            iterations=0, meta={"stats": ExactStats(0, "branch_and_bound")},
        )
    best_cost = warm.cost
    best_sel = warm.selected.copy()
    stats = ExactStats(0, "branch_and_bound")

    def node_relaxation(fixed_one: np.ndarray, fixed_zero: np.ndarray):
        """True LP relaxation of the subproblem: only free columns remain,
        demand reduced by the fixed-to-1 contributions."""
        free = np.flatnonzero(~(fixed_one | fixed_zero))
        sub_demand = np.clip(
            instance.demand - instance.q[:, fixed_one].sum(axis=1), 0.0, None
        )
        base = float(instance.costs[fixed_one].sum())
        if free.size == 0:
            feasible = bool(sub_demand.max(initial=0.0) <= 1e-9)
            return None, free, base, feasible
        sub = CoveringInstance(
            costs=instance.costs[free],
            q=np.ascontiguousarray(instance.q[:, free]),
            demand=sub_demand,
        )
        relax = solve_relaxation(sub)
        return relax, free, base, relax.feasible

    def dfs(fixed_one: np.ndarray, fixed_zero: np.ndarray) -> None:
        nonlocal best_cost, best_sel
        if stats.nodes >= max_nodes:
            return
        stats.nodes += 1
        relax, free, base, feasible = node_relaxation(fixed_one, fixed_zero)
        if not feasible:
            return
        if relax is None:
            # All variables fixed and demand met.
            if base < best_cost - 1e-12:
                best_cost = base
                best_sel = fixed_one.copy()
            return
        lb = relax.lower_bound + base
        if lb >= best_cost - 1e-9:
            return
        frac = np.abs(relax.xbar - 0.5)
        j_local = int(np.argmin(frac))
        if frac[j_local] > 0.5 - 1e-6:
            # LP integral on the free columns: this node is solved exactly.
            candidate = fixed_one.copy()
            candidate[free[relax.xbar > 0.5]] = True
            if instance.is_feasible(candidate):
                cost = instance.cost_of(candidate)
                if cost < best_cost - 1e-12:
                    best_cost = cost
                    best_sel = candidate.copy()
                return
            # Rounding broke feasibility (LP tolerance): branch anyway on
            # the least-integral free column.
        j = int(free[j_local])
        one = fixed_one.copy()
        one[j] = True
        dfs(one, fixed_zero)
        zero = fixed_zero.copy()
        zero[j] = True
        dfs(fixed_one, zero)

    dfs(np.zeros(n, dtype=bool), np.zeros(n, dtype=bool))
    return CoverSolution(
        selected=best_sel, cost=best_cost, feasible=True,
        iterations=stats.nodes, meta={"stats": stats},
    )


def solve_exact(
    instance: CoveringInstance,
    method: str = "auto",
    max_nodes: int = 200_000,
) -> CoverSolution:
    """Solve a covering instance to optimality.

    Parameters
    ----------
    method:
        ``"enumeration"``, ``"branch_and_bound"``, or ``"auto"`` (pick
        enumeration when ``n <= 22``).
    max_nodes:
        Node budget for branch-and-bound; exceeding it returns the
        incumbent (flagged via ``meta['stats'].nodes``).
    """
    if method == "auto":
        method = "enumeration" if instance.n_bundles <= _ENUM_LIMIT else "branch_and_bound"
    if method == "enumeration":
        if instance.n_bundles > 26:
            raise ValueError(
                f"enumeration limited to 26 bundles, got {instance.n_bundles}"
            )
        return _solve_enumeration(instance)
    if method == "branch_and_bound":
        return _solve_branch_and_bound(instance, max_nodes)
    raise ValueError(f"unknown exact method {method!r}")
