"""Classical scoring rules for the greedy covering solver.

These serve three roles in the reproduction:

1. *baselines* — what a hand-written heuristic achieves, against which the
   GP-evolved scoring functions are compared (examples/evolve_heuristic.py),
2. *semantic anchors* — each rule is expressible in the paper's GP language
   (Table I), so tests assert that the GP engine can represent them and
   that a tree encoding Chvátal's rule reproduces this module's behaviour,
3. *repair ordering* — :mod:`repro.covering.repair` uses Chvátal's rule.

All rules return a per-bundle score where **lower is better** (picked
first), matching :func:`repro.covering.greedy.greedy_cover`.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.covering.greedy import GreedyContext, ScoreFunction

__all__ = [
    "chvatal_score",
    "cost_score",
    "coverage_score",
    "dual_score",
    "lp_guided_score",
    "make_heuristic",
    "NAMED_HEURISTICS",
]

_TINY = 1e-12


def chvatal_score(ctx: GreedyContext) -> np.ndarray:
    """Chvátal's classical rule: cost per unit of *useful* coverage.

    ``c_j / cover_j`` — the canonical ln(n)-approximation ordering for set
    covering, generalized to fractional contributions.
    """
    return ctx.costs / np.maximum(ctx.coverage, _TINY)


def cost_score(ctx: GreedyContext) -> np.ndarray:
    """Cheapest-first, ignoring coverage entirely."""
    return ctx.costs.astype(np.float64, copy=True)


def coverage_score(ctx: GreedyContext) -> np.ndarray:
    """Most-coverage-first, ignoring cost (negated so lower = better)."""
    return -ctx.coverage


def dual_score(ctx: GreedyContext) -> np.ndarray:
    """LP-dual reduced-cost rule: ``c_j - sum_k d_k q_j^k``.

    Bundles whose cost is less than their dual-weighted contribution look
    attractive; with exact duals this mimics a primal-dual covering
    heuristic.  Falls back to plain cost when no relaxation was supplied
    (``ctx.duals`` all zero).
    """
    return ctx.costs - ctx.duals


def lp_guided_score(ctx: GreedyContext) -> np.ndarray:
    """Follow the LP-relaxed solution: high ``x̄_j`` first, cost tie-break."""
    return -ctx.xbar + 1e-6 * ctx.costs


def random_score_factory(rng: np.random.Generator) -> ScoreFunction:
    """A fresh random ordering each step — the weakest sensible baseline."""

    def _score(ctx: GreedyContext) -> np.ndarray:
        return rng.random(ctx.costs.shape[0])

    return _score


NAMED_HEURISTICS: Dict[str, ScoreFunction] = {
    "chvatal": chvatal_score,
    "cost": cost_score,
    "coverage": coverage_score,
    "dual": dual_score,
    "lp_guided": lp_guided_score,
}


def make_heuristic(name: str, rng: np.random.Generator | None = None) -> ScoreFunction:
    """Look up a named scoring rule (``"random"`` needs an ``rng``)."""
    if name == "random":
        if rng is None:
            raise ValueError("random heuristic requires an rng")
        return random_score_factory(rng)
    try:
        return NAMED_HEURISTICS[name]
    except KeyError:
        raise ValueError(
            f"unknown heuristic {name!r}; known: {sorted(NAMED_HEURISTICS)} + ['random']"
        ) from None
