"""Covering-problem instance and solution containers.

An instance is

    min  sum_j c_j x_j
    s.t. sum_j q[k, j] x_j >= b[k]   for every service k
         x_j in {0, 1}

with non-negative, generally *non-binary* coefficients ``q`` — exactly the
lower-level program of the paper's BCPOP (Program 2), and the ≥-transformed
multidimensional-knapsack instances of §V-A.

Arrays are stored C-contiguous with services on axis 0 and bundles on
axis 1 so that the greedy solver's residual-coverage computation
(``q.clip(max=residual[:, None]).sum(axis=0)``) streams rows contiguously.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["CoveringInstance", "CoverSolution"]


@dataclass(frozen=True)
class CoveringInstance:
    """A minimum-cost covering instance.

    Parameters
    ----------
    costs:
        ``(n_bundles,)`` non-negative bundle costs ``c_j``.
    q:
        ``(n_services, n_bundles)`` non-negative contribution matrix;
        ``q[k, j]`` is the amount of service ``k`` provided by bundle ``j``
        (the paper's ``q_j^k``).
    demand:
        ``(n_services,)`` non-negative requirements ``b^k``.
    name:
        Optional label used in experiment reports.
    """

    costs: np.ndarray
    q: np.ndarray
    demand: np.ndarray
    name: str = ""

    def __post_init__(self) -> None:
        costs = np.ascontiguousarray(np.asarray(self.costs, dtype=np.float64))
        q = np.ascontiguousarray(np.asarray(self.q, dtype=np.float64))
        demand = np.ascontiguousarray(np.asarray(self.demand, dtype=np.float64))
        if q.ndim != 2:
            raise ValueError(f"q must be 2-D (services x bundles), got shape {q.shape}")
        if costs.ndim != 1 or costs.shape[0] != q.shape[1]:
            raise ValueError(
                f"costs shape {costs.shape} incompatible with q shape {q.shape}"
            )
        if demand.ndim != 1 or demand.shape[0] != q.shape[0]:
            raise ValueError(
                f"demand shape {demand.shape} incompatible with q shape {q.shape}"
            )
        if np.any(costs < 0):
            raise ValueError("bundle costs must be non-negative")
        if np.any(q < 0):
            raise ValueError("contribution matrix q must be non-negative")
        if np.any(demand < 0):
            raise ValueError("demand must be non-negative")
        object.__setattr__(self, "costs", costs)
        object.__setattr__(self, "q", q)
        object.__setattr__(self, "demand", demand)

    @property
    def n_bundles(self) -> int:
        """Number of bundles (the paper's ``M`` / instance parameter ``n``)."""
        return self.q.shape[1]

    @property
    def n_services(self) -> int:
        """Number of service constraints (the paper's ``N`` / parameter ``m``)."""
        return self.q.shape[0]

    def is_coverable(self) -> bool:
        """True iff selecting *every* bundle satisfies all requirements —
        the paper's "non-empty search space" check (§V-A)."""
        return bool(np.all(self.q.sum(axis=1) >= self.demand - 1e-9))

    def coverage_of(self, selected: np.ndarray) -> np.ndarray:
        """Total per-service contribution of a binary selection vector."""
        sel = np.asarray(selected, dtype=bool)
        if sel.shape != (self.n_bundles,):
            raise ValueError(
                f"selection shape {sel.shape} != ({self.n_bundles},)"
            )
        return self.q[:, sel].sum(axis=1)

    def is_feasible(self, selected: np.ndarray, tol: float = 1e-9) -> bool:
        """True iff the selection covers every requirement."""
        return bool(np.all(self.coverage_of(selected) >= self.demand - tol))

    def cost_of(self, selected: np.ndarray) -> float:
        """Total cost of a binary selection vector."""
        sel = np.asarray(selected, dtype=bool)
        return float(self.costs[sel].sum())

    def with_costs(self, costs: np.ndarray, name: str | None = None) -> "CoveringInstance":
        """Return a new instance sharing ``q``/``demand`` with new costs.

        This is how an upper-level pricing decision induces a new
        lower-level instance: feasibility structure is unchanged, only the
        objective moves.  ``q`` and ``demand`` are shared (views), not
        copied.
        """
        return CoveringInstance(
            costs=costs, q=self.q, demand=self.demand,
            name=self.name if name is None else name,
        )


@dataclass
class CoverSolution:
    """Result of a covering solver.

    Attributes
    ----------
    selected:
        ``(n_bundles,)`` boolean selection vector.
    cost:
        Objective value ``sum_j c_j x_j``.
    feasible:
        Whether every requirement is covered (greedy can fail only when the
        instance itself is uncoverable).
    iterations:
        Number of greedy picks / solver nodes, for diagnostics.
    """

    selected: np.ndarray
    cost: float
    feasible: bool
    iterations: int = 0
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.selected = np.asarray(self.selected, dtype=bool)
        self.cost = float(self.cost)

    @property
    def n_selected(self) -> int:
        return int(self.selected.sum())

    def check(self, instance: CoveringInstance, tol: float = 1e-6) -> None:
        """Raise if the recorded cost/feasibility do not match ``instance``."""
        actual_cost = instance.cost_of(self.selected)
        if abs(actual_cost - self.cost) > tol * max(1.0, abs(actual_cost)):
            raise AssertionError(
                f"recorded cost {self.cost} != actual {actual_cost}"
            )
        if self.feasible != instance.is_feasible(self.selected):
            raise AssertionError("recorded feasibility flag does not match instance")
