"""Covering-problem substrate.

The lower level of the Bi-level Cloud Pricing Optimization Problem (BCPOP,
paper Program 2) is a *covering problem with non-binary coefficients*: the
customer must pick a set of bundles whose per-service contributions
``q_j^k`` cover every requirement ``b^k`` at minimum total cost.  This
package implements that problem class and every solver the paper needs:

* :mod:`repro.covering.instance` — validated instance container,
* :mod:`repro.covering.greedy`  — the score-ordered greedy framework that
  GP-evolved scoring functions plug into (paper §IV-B),
* :mod:`repro.covering.heuristics` — classical hand-written scoring rules
  (Chvátal cost/coverage, dual-weighted, LP-guided) used as baselines and
  as semantic anchors for GP terminals,
* :mod:`repro.covering.repair` — feasibility repair for binary vectors
  (needed by COBRA's direct lower-level encoding),
* :mod:`repro.covering.local_search` — redundancy elimination and swap
  improvement,
* :mod:`repro.covering.exact` — exact solvers (enumeration and LP-based
  branch-and-bound) for validating gaps on small instances.
"""

from repro.covering.instance import CoveringInstance, CoverSolution
from repro.covering.greedy import GreedyContext, greedy_cover
from repro.covering.heuristics import (
    NAMED_HEURISTICS,
    chvatal_score,
    cost_score,
    coverage_score,
    dual_score,
    lp_guided_score,
    make_heuristic,
)
from repro.covering.repair import repair_cover, prune_redundant
from repro.covering.local_search import improve_by_swap
from repro.covering.exact import solve_exact

__all__ = [
    "CoveringInstance",
    "CoverSolution",
    "GreedyContext",
    "greedy_cover",
    "NAMED_HEURISTICS",
    "chvatal_score",
    "cost_score",
    "coverage_score",
    "dual_score",
    "lp_guided_score",
    "make_heuristic",
    "repair_cover",
    "prune_redundant",
    "improve_by_swap",
    "solve_exact",
]
