"""Score-ordered greedy covering solver.

This is the heuristic *framework* of the paper (§IV-B): a greedy loop that
repeatedly adds the bundle with the best score until every service
requirement is met, where the *scoring function* is a plug-in — either a
classical hand-written rule (:mod:`repro.covering.heuristics`) or a
GP-evolved syntax tree.  The evolved population in CARBON is a population
of scoring functions; embedding each into this loop yields a complete
lower-level solver.

Vectorization (HPC guide idiom): one scoring call returns scores for *all*
bundles at once; the per-iteration state update is two in-place array
operations.  There is no per-bundle Python loop anywhere in the hot path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.covering.instance import CoveringInstance, CoverSolution

__all__ = ["GreedyContext", "ScoreFunction", "greedy_cover"]


@dataclass
class GreedyContext:
    """Per-bundle feature view handed to scoring functions.

    Static features are computed once per solve; dynamic features
    (``residual``, ``coverage``) are refreshed in place at each greedy step.
    All vector attributes have length ``n_bundles`` unless noted.

    Attributes
    ----------
    costs:
        Bundle costs ``c_j`` (GP terminal ``COST``).
    q_sum:
        Total contribution ``sum_k q_j^k`` (terminal ``QSUM``).
    q_max:
        Peak contribution ``max_k q_j^k`` (terminal ``QMAX``).
    coverage:
        *Useful residual* contribution ``sum_k min(q_j^k, residual_k)``
        (terminal ``COVER``) — the classical greedy denominator.
    demand_total:
        Scalar ``sum_k b^k`` broadcast over bundles (terminal ``BSUM``).
    residual_total:
        Scalar remaining demand ``sum_k residual_k`` broadcast (``BRES``).
    duals:
        Dual-weighted contribution ``sum_k d_k q_j^k`` from the LP
        relaxation (terminal ``DUAL``); zeros when no relaxation is given.
    xbar:
        LP-relaxed solution value ``x̄_j`` (terminal ``XLP``); zeros when
        no relaxation is given.
    selected:
        Boolean mask of already-picked bundles.
    residual:
        ``(n_services,)`` remaining demand vector (not per-bundle).
    """

    instance: CoveringInstance
    costs: np.ndarray
    q_sum: np.ndarray
    q_max: np.ndarray
    coverage: np.ndarray
    demand_total: np.ndarray
    residual_total: np.ndarray
    duals: np.ndarray
    xbar: np.ndarray
    selected: np.ndarray
    residual: np.ndarray
    step: int = 0
    extras: dict = field(default_factory=dict)

    @classmethod
    def fresh(
        cls,
        instance: CoveringInstance,
        duals: np.ndarray | None = None,
        xbar: np.ndarray | None = None,
    ) -> "GreedyContext":
        """Build the initial context for a solve of ``instance``."""
        n = instance.n_bundles
        residual = instance.demand.copy()
        q = instance.q
        dual_vec = (
            np.zeros(n)
            if duals is None
            else np.asarray(duals, dtype=np.float64) @ q
        )
        xbar_vec = (
            np.zeros(n)
            if xbar is None
            else np.asarray(xbar, dtype=np.float64).copy()
        )
        if dual_vec.shape != (n,):
            raise ValueError(f"duals incompatible with instance: {dual_vec.shape}")
        if xbar_vec.shape != (n,):
            raise ValueError(f"xbar shape {xbar_vec.shape} != ({n},)")
        ctx = cls(
            instance=instance,
            costs=instance.costs,
            q_sum=q.sum(axis=0),
            q_max=q.max(axis=0) if instance.n_services else np.zeros(n),
            coverage=np.minimum(q, residual[:, None]).sum(axis=0),
            demand_total=np.full(n, instance.demand.sum()),
            residual_total=np.full(n, residual.sum()),
            duals=dual_vec,
            xbar=xbar_vec,
            selected=np.zeros(n, dtype=bool),
            residual=residual,
        )
        return ctx

    def pick(self, j: int) -> None:
        """Mark bundle ``j`` selected and refresh the dynamic features."""
        if self.selected[j]:
            raise ValueError(f"bundle {j} already selected")
        self.selected[j] = True
        np.subtract(self.residual, self.instance.q[:, j], out=self.residual)
        np.clip(self.residual, 0.0, None, out=self.residual)
        self.coverage = np.minimum(self.instance.q, self.residual[:, None]).sum(axis=0)
        self.residual_total.fill(self.residual.sum())
        self.step += 1

    @property
    def covered(self) -> bool:
        return bool(self.residual.max(initial=0.0) <= 1e-9)


ScoreFunction = Callable[[GreedyContext], np.ndarray]
"""A scoring rule: lower score = picked earlier.  Must return a float array
of length ``n_bundles``; entries for ineligible bundles are ignored."""


def greedy_cover(
    instance: CoveringInstance,
    score_fn: ScoreFunction,
    duals: np.ndarray | None = None,
    xbar: np.ndarray | None = None,
    prune: bool = True,
    max_steps: int | None = None,
) -> CoverSolution:
    """Solve ``instance`` greedily under ``score_fn`` (lower is better).

    At each step the *eligible* bundles are those not yet selected whose
    residual coverage is positive; the one with the lowest score is added.
    Non-finite scores are treated as worst-possible.  After construction,
    redundant bundles are pruned (most expensive first) unless
    ``prune=False``.

    Returns an infeasible :class:`CoverSolution` only when the instance
    itself is uncoverable.
    """
    ctx = GreedyContext.fresh(instance, duals=duals, xbar=xbar)
    n = instance.n_bundles
    limit = max_steps if max_steps is not None else n
    steps = 0
    while not ctx.covered and steps < limit:
        eligible = (~ctx.selected) & (ctx.coverage > 1e-12)
        if not eligible.any():
            return CoverSolution(
                selected=ctx.selected,
                cost=instance.cost_of(ctx.selected),
                feasible=False,
                iterations=steps,
            )
        scores = np.asarray(score_fn(ctx), dtype=np.float64)
        if scores.shape != (n,):
            raise ValueError(
                f"score function returned shape {scores.shape}, expected ({n},)"
            )
        scores = np.where(np.isfinite(scores), scores, np.inf)
        masked = np.where(eligible, scores, np.inf)
        j = int(np.argmin(masked))
        if not np.isfinite(masked[j]):
            # All eligible bundles scored non-finite: fall back to the
            # first eligible index (keeps degenerate trees total).
            j = int(np.flatnonzero(eligible)[0])
        ctx.pick(j)
        steps += 1

    feasible = ctx.covered
    selected = ctx.selected
    if feasible and prune:
        from repro.covering.repair import prune_redundant

        selected = prune_redundant(instance, selected)
    return CoverSolution(
        selected=selected,
        cost=instance.cost_of(selected),
        feasible=feasible,
        iterations=steps,
    )
