"""Score-ordered greedy covering solver.

This is the heuristic *framework* of the paper (§IV-B): a greedy loop that
repeatedly adds the bundle with the best score until every service
requirement is met, where the *scoring function* is a plug-in — either a
classical hand-written rule (:mod:`repro.covering.heuristics`) or a
GP-evolved syntax tree.  The evolved population in CARBON is a population
of scoring functions; embedding each into this loop yields a complete
lower-level solver.

Vectorization (HPC guide idiom): one scoring call returns scores for *all*
bundles at once; the per-iteration state update is two in-place array
operations.  There is no per-bundle Python loop anywhere in the hot path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.covering.instance import CoveringInstance, CoverSolution

__all__ = ["ContextStatics", "GreedyContext", "ScoreFunction", "greedy_cover"]


@dataclass(frozen=True)
class ContextStatics:
    """Price-invariant feature matrices, shared across a whole population.

    ``q_sum``/``q_max``/``demand_total`` and the *initial* coverage
    depend only on ``(q, demand)`` — which never change across the
    induced instances of one bi-level problem (only the cost vector
    does) — yet :meth:`GreedyContext.fresh` used to recompute them on
    every solve.  An evaluator builds this bundle once per instance and
    threads it through every greedy solve; the arrays are computed with
    the exact expressions ``fresh`` uses, so sharing them is
    bit-identical.

    The shared arrays are read-only by convention: the greedy loop
    *reassigns* ``ctx.coverage`` (never mutates it in place), and the
    genuinely per-solve state (``residual``, ``residual_total``,
    ``selected``) is still freshly allocated per solve.
    """

    q_sum: np.ndarray
    q_max: np.ndarray
    coverage: np.ndarray
    demand_total: np.ndarray

    @classmethod
    def for_instance(cls, instance: CoveringInstance) -> "ContextStatics":
        """Precompute the static features of ``instance``.

        ``coverage`` here is the step-0 value: with ``residual ==
        demand`` (an exact copy), ``min(q, residual)`` and
        ``min(q, demand)`` are the same bits.
        """
        n = instance.n_bundles
        q = instance.q
        return cls(
            q_sum=q.sum(axis=0),
            q_max=q.max(axis=0) if instance.n_services else np.zeros(n),
            coverage=np.minimum(q, instance.demand[:, None]).sum(axis=0),
            demand_total=np.full(n, instance.demand.sum()),
        )


@dataclass
class GreedyContext:
    """Per-bundle feature view handed to scoring functions.

    Static features are computed once per solve; dynamic features
    (``residual``, ``coverage``) are refreshed in place at each greedy step.
    All vector attributes have length ``n_bundles`` unless noted.

    Attributes
    ----------
    costs:
        Bundle costs ``c_j`` (GP terminal ``COST``).
    q_sum:
        Total contribution ``sum_k q_j^k`` (terminal ``QSUM``).
    q_max:
        Peak contribution ``max_k q_j^k`` (terminal ``QMAX``).
    coverage:
        *Useful residual* contribution ``sum_k min(q_j^k, residual_k)``
        (terminal ``COVER``) — the classical greedy denominator.
    demand_total:
        Scalar ``sum_k b^k`` broadcast over bundles (terminal ``BSUM``).
    residual_total:
        Scalar remaining demand ``sum_k residual_k`` broadcast (``BRES``).
    duals:
        Dual-weighted contribution ``sum_k d_k q_j^k`` from the LP
        relaxation (terminal ``DUAL``); zeros when no relaxation is given.
    xbar:
        LP-relaxed solution value ``x̄_j`` (terminal ``XLP``); zeros when
        no relaxation is given.
    selected:
        Boolean mask of already-picked bundles.
    residual:
        ``(n_services,)`` remaining demand vector (not per-bundle).
    """

    instance: CoveringInstance
    costs: np.ndarray
    q_sum: np.ndarray
    q_max: np.ndarray
    coverage: np.ndarray
    demand_total: np.ndarray
    residual_total: np.ndarray
    duals: np.ndarray
    xbar: np.ndarray
    selected: np.ndarray
    residual: np.ndarray
    step: int = 0
    extras: dict = field(default_factory=dict)

    @classmethod
    def fresh(
        cls,
        instance: CoveringInstance,
        duals: np.ndarray | None = None,
        xbar: np.ndarray | None = None,
        statics: ContextStatics | None = None,
    ) -> "GreedyContext":
        """Build the initial context for a solve of ``instance``.

        ``statics`` (optional) supplies the precomputed price-invariant
        features — bit-identical to computing them here, just not paid
        for on every solve of the same ``(q, demand)`` family.
        """
        n = instance.n_bundles
        residual = instance.demand.copy()
        q = instance.q
        dual_vec = (
            np.zeros(n)
            if duals is None
            else np.asarray(duals, dtype=np.float64) @ q
        )
        xbar_vec = (
            np.zeros(n)
            if xbar is None
            else np.asarray(xbar, dtype=np.float64).copy()
        )
        if dual_vec.shape != (n,):
            raise ValueError(f"duals incompatible with instance: {dual_vec.shape}")
        if xbar_vec.shape != (n,):
            raise ValueError(f"xbar shape {xbar_vec.shape} != ({n},)")
        if statics is None:
            statics = ContextStatics.for_instance(instance)
        elif statics.q_sum.shape != (n,):
            raise ValueError(
                f"statics built for n={statics.q_sum.shape} != ({n},)"
            )
        ctx = cls(
            instance=instance,
            costs=instance.costs,
            q_sum=statics.q_sum,
            q_max=statics.q_max,
            coverage=statics.coverage,
            demand_total=statics.demand_total,
            residual_total=np.full(n, residual.sum()),
            duals=dual_vec,
            xbar=xbar_vec,
            selected=np.zeros(n, dtype=bool),
            residual=residual,
        )
        return ctx

    def pick(self, j: int) -> None:
        """Mark bundle ``j`` selected and refresh the dynamic features."""
        if self.selected[j]:
            raise ValueError(f"bundle {j} already selected")
        self.selected[j] = True
        np.subtract(self.residual, self.instance.q[:, j], out=self.residual)
        np.clip(self.residual, 0.0, None, out=self.residual)
        self.coverage = np.minimum(self.instance.q, self.residual[:, None]).sum(axis=0)
        self.residual_total.fill(self.residual.sum())
        self.step += 1

    @property
    def covered(self) -> bool:
        return bool(self.residual.max(initial=0.0) <= 1e-9)


ScoreFunction = Callable[[GreedyContext], np.ndarray]
"""A scoring rule: lower score = picked earlier.  Must return a float array
of length ``n_bundles``; entries for ineligible bundles are ignored."""


def greedy_cover(
    instance: CoveringInstance,
    score_fn: ScoreFunction,
    duals: np.ndarray | None = None,
    xbar: np.ndarray | None = None,
    prune: bool = True,
    max_steps: int | None = None,
    statics: ContextStatics | None = None,
) -> CoverSolution:
    """Solve ``instance`` greedily under ``score_fn`` (lower is better).

    At each step the *eligible* bundles are those not yet selected whose
    residual coverage is positive; the one with the lowest score is added.
    Non-finite scores are treated as worst-possible.  After construction,
    redundant bundles are pruned (most expensive first) unless
    ``prune=False``.

    ``statics`` optionally carries the precomputed price-invariant
    features (see :class:`ContextStatics`).  A score function exposing a
    truthy ``is_static`` attribute (a compiled program with no dynamic
    terminal — :mod:`repro.gp.compile`) is called once and its scores
    reused at every step: the inputs cannot change within the solve, so
    the per-step score vectors are the same array and the selected
    bundles are unchanged.

    Returns an infeasible :class:`CoverSolution` only when the instance
    itself is uncoverable.
    """
    ctx = GreedyContext.fresh(instance, duals=duals, xbar=xbar, statics=statics)
    n = instance.n_bundles
    limit = max_steps if max_steps is not None else n
    steps = 0
    score_is_static = bool(getattr(score_fn, "is_static", False))
    static_scores: np.ndarray | None = None
    while not ctx.covered and steps < limit:
        eligible = (~ctx.selected) & (ctx.coverage > 1e-12)
        if not eligible.any():
            return CoverSolution(
                selected=ctx.selected,
                cost=instance.cost_of(ctx.selected),
                feasible=False,
                iterations=steps,
            )
        if static_scores is None:
            scores = np.asarray(score_fn(ctx), dtype=np.float64)
            if scores.shape != (n,):
                raise ValueError(
                    f"score function returned shape {scores.shape}, expected ({n},)"
                )
            scores = np.where(np.isfinite(scores), scores, np.inf)
            if score_is_static:
                static_scores = scores
        else:
            scores = static_scores
        masked = np.where(eligible, scores, np.inf)
        j = int(np.argmin(masked))
        if not np.isfinite(masked[j]):
            # All eligible bundles scored non-finite: fall back to the
            # first eligible index (keeps degenerate trees total).
            j = int(np.flatnonzero(eligible)[0])
        ctx.pick(j)
        steps += 1

    feasible = ctx.covered
    selected = ctx.selected
    if feasible and prune:
        from repro.covering.repair import prune_redundant

        selected = prune_redundant(instance, selected)
    return CoverSolution(
        selected=selected,
        cost=instance.cost_of(selected),
        feasible=feasible,
        iterations=steps,
    )
