"""The extended bi-level metaheuristics taxonomy (paper Fig. 2).

Encoded as a :mod:`networkx` DAG so benches can regenerate the figure's
structure programmatically (node set, edges, and the category of every
algorithm the related-work section discusses, including CARBON's own
placement under the co-evolutionary branch).
"""

from __future__ import annotations

import networkx as nx

__all__ = ["bilevel_taxonomy", "render_taxonomy", "STRATEGY_CODES"]

#: §III's five resolution strategies (plus the NSQ sub-approaches).
STRATEGY_CODES: dict[str, str] = {
    "NSQ": "Nested sequential",
    "REP": "Repairing approach",
    "CST": "Constructive approach",
    "STA": "Single-level transformation",
    "COE": "Co-evolutionary",
    "MOA": "Multi-objective",
    "APP": "Lower-level approximation",
}


def bilevel_taxonomy() -> nx.DiGraph:
    """Build the Fig. 2 taxonomy as a directed tree.

    Nodes carry ``kind`` (``root`` / ``strategy`` / ``subapproach`` /
    ``algorithm``) and ``label`` attributes; algorithm nodes carry a
    ``reference`` naming the §III citation they stand for.
    """
    g = nx.DiGraph()
    g.add_node("bi-level metaheuristics", kind="root", label="Bi-level metaheuristics")

    def strategy(code: str) -> None:
        g.add_node(code, kind="strategy", label=STRATEGY_CODES[code])
        g.add_edge("bi-level metaheuristics", code)

    for code in ("NSQ", "STA", "COE", "MOA", "APP"):
        strategy(code)

    for code in ("REP", "CST"):
        g.add_node(code, kind="subapproach", label=STRATEGY_CODES[code])
        g.add_edge("NSQ", code)

    algorithms = [
        ("DE-repair (Koh 2007)", "REP"),
        ("Sequential GA (Li et al.)", "CST"),
        ("Dual-temperature SA (Sahin & Ciric 1998)", "STA"),
        ("KKT-EA reformulation", "STA"),
        ("Fliege & Vicente equivalence", "MOA"),
        ("BLEAQ (Sinha & Deb 2014)", "APP"),
        ("Bayesian bi-level (Kieffer et al. 2017)", "APP"),
        ("BIGA (Oduguwa & Roy 2002)", "COE"),
        ("COBRA (Legillon et al. 2012)", "COE"),
        ("CODBA (Chaabani et al. 2015)", "COE"),
        ("CARBON (this paper)", "COE"),
    ]
    for name, parent in algorithms:
        g.add_node(name, kind="algorithm", label=name, reference=parent)
        g.add_edge(parent, name)
    return g


def render_taxonomy(g: nx.DiGraph | None = None, root: str = "bi-level metaheuristics") -> str:
    """ASCII rendering of the taxonomy tree (deterministic order)."""
    g = g if g is not None else bilevel_taxonomy()
    lines: list[str] = []

    def walk(node: str, prefix: str, is_last: bool, is_root: bool) -> None:
        label = g.nodes[node].get("label", node)
        if is_root:
            lines.append(label)
            child_prefix = ""
        else:
            connector = "`-- " if is_last else "|-- "
            lines.append(prefix + connector + label)
            child_prefix = prefix + ("    " if is_last else "|   ")
        children = sorted(g.successors(node))
        for i, child in enumerate(children):
            walk(child, child_prefix, i == len(children) - 1, False)

    walk(root, "", True, True)
    return "\n".join(lines)
