"""Bi-level optimization formalism (paper §II).

Implements the vocabulary of Program 1 — constraint region ``S``, the
parametric lower level ``LL(x)``, the rational reaction set ``P(x)``, the
inducible region ``IR`` — for problems small enough to enumerate or solve
exactly, plus the worked linear example the paper uses twice (Fig. 1 /
Program 3, the Mersha–Dempe instance) and the %-gap measure (Eq. 1).
"""

from repro.bilevel.gap import percent_gap
from repro.bilevel.problem import (
    BilevelProblem,
    GridBilevelProblem,
    RationalReaction,
    BilevelPoint,
)
from repro.bilevel.linear import (
    LinearLowerLevel,
    LinearBilevelExample,
    indifferent_follower_example,
    mersha_dempe_example,
)
from repro.bilevel.taxonomy import bilevel_taxonomy, render_taxonomy
from repro.bilevel.bilinear import (
    BilinearContext,
    BilinearEvaluator,
    BilinearInstance,
    bilinear_instance,
)

__all__ = [
    "percent_gap",
    "BilinearContext",
    "BilinearEvaluator",
    "BilinearInstance",
    "bilinear_instance",
    "BilevelProblem",
    "GridBilevelProblem",
    "RationalReaction",
    "BilevelPoint",
    "LinearLowerLevel",
    "LinearBilevelExample",
    "indifferent_follower_example",
    "mersha_dempe_example",
    "bilevel_taxonomy",
    "render_taxonomy",
]
