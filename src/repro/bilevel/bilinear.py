"""Maximin bilinear toy problem with an analytically known saddle point.

The ground-truth problem the convergence gate runs CARBON against
(tests/test_convergence_gate.py), modelled on the bilinear maximin
function of Lehre's runtime analysis of competitive co-evolutionary
algorithms (PAPERS.md):

    g(x, y) = scale * (mean(x) - a) * (Y(y) - b)

with leader decision ``x in [0, 1]^n`` (maximizing) and follower basket
``y in {0, 1}^m`` (minimizing), where ``Y(y) = sum_j w_j y_j / sum_j w_j``
is the weighted take fraction.  The follower's exact best response is
bang-bang: minimizing ``g`` means taking everything when ``mean(x) < a``
(push ``Y - b`` up against the negative first factor) and nothing when
``mean(x) > a``, hence

    min_y g(x, y) = -scale * |mean(x) - a| * (b if mean(x) > a else 1 - b)

which is maximized — uniquely in ``mean(x)`` — at ``mean(x) = a`` with
maximin value exactly 0.  That analytic optimum is what the gate asserts
convergence to.

The problem duck-types the :class:`repro.bcpop.instance.BcpopInstance`
surface the engine algorithms consume (``digest``, ``price_bounds``,
``validate_prices``, ``n_bundles``, ``make_evaluator``), and its
evaluator speaks the GP language of Table I: the per-item feature context
exposes the same attribute names as
:class:`repro.covering.greedy.GreedyContext`, with ``COST`` carrying the
follower's signed marginal payoff ``c_j = scale * w_j * (mean(x) - a) /
sum(w)`` — so the plain one-terminal tree ``COST`` *is* the optimal
follower policy under the evaluator's selection rule (take every item
scoring negative), and classical rules keep their semantics (Chvátal's
``COST % COVER`` divides by the positive weight, preserving the sign;
LP-guided ``0 - XLP`` follows the exact best-response indicator).

Cycling rationale (why this problem discriminates evaluation modes): a
follower heuristic specialised against the *current* leader population
is a constant policy (take-all or take-none); a leader graded only
against that specialist profitably overshoots to the far side of ``a``,
the follower re-specialises, and the pair orbits the saddle instead of
converging — Lehre's failure mode.  Worst-case grading against an
*archive* holding both specialists scores a leader by
``-|mean(x) - a|``-shaped payoff, which is exactly the maximin objective,
so archive mode converges to the known optimum.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.bcpop.evaluate import EvaluationMemo, LowerLevelOutcome
from repro.gp.compile import CompileCache
from repro.gp.tree import SyntaxTree
from repro.utils.profiling import HotPathTimers

__all__ = ["BilinearContext", "BilinearInstance", "BilinearEvaluator", "bilinear_instance"]


@dataclass
class BilinearContext:
    """GreedyContext-shaped feature view for one leader decision.

    Only the attributes the Table I terminals read (plus the classical
    heuristics of :mod:`repro.covering.heuristics`) — per-item arrays of
    length ``m`` throughout.
    """

    costs: np.ndarray
    q_sum: np.ndarray
    q_max: np.ndarray
    coverage: np.ndarray
    demand_total: np.ndarray
    residual_total: np.ndarray
    duals: np.ndarray
    xbar: np.ndarray
    selected: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=bool))
    step: int = 0


@dataclass(frozen=True)
class BilinearInstance:
    """One maximin bilinear problem.

    Parameters
    ----------
    n:
        Leader dimension (``x in [0, 1]^n``).
    weights:
        Positive per-item follower weights ``w_j`` (their heterogeneity
        makes the GP features non-constant across items).
    a:
        Leader target: the saddle sits at ``mean(x) = a``.
    b:
        Follower offset in ``(0, 1)``; both ``b`` and ``1 - b`` must be
        positive so overshooting *either* side of ``a`` is punished.
    scale:
        Payoff scale (gap percentages are normalized by it).
    """

    n: int
    weights: np.ndarray
    a: float
    b: float
    scale: float
    name: str = "bilinear"

    def __post_init__(self) -> None:
        weights = np.ascontiguousarray(np.asarray(self.weights, dtype=np.float64))
        if weights.ndim != 1 or weights.size < 1:
            raise ValueError(f"weights must be a non-empty vector, got {weights.shape}")
        if np.any(weights <= 0):
            raise ValueError("weights must be positive")
        if self.n < 1:
            raise ValueError(f"n must be >= 1, got {self.n}")
        if not (0.0 < self.a < 1.0):
            raise ValueError(f"a must be in (0, 1), got {self.a}")
        if not (0.0 < self.b < 1.0):
            raise ValueError(f"b must be in (0, 1), got {self.b}")
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")
        object.__setattr__(self, "weights", weights)

    # -- BcpopInstance duck surface ----------------------------------------

    @property
    def m(self) -> int:
        return int(self.weights.size)

    @property
    def n_bundles(self) -> int:
        """Follower decision length (the engine's selection width)."""
        return self.m

    @property
    def n_own(self) -> int:
        """Leader decision length (mirrors the BCPOP naming)."""
        return self.n

    @property
    def digest(self) -> str:
        cached = self.__dict__.get("_digest")
        if cached is None:
            h = hashlib.sha256()
            h.update(b"bilinear")
            h.update(np.asarray([self.n], dtype=np.int64).tobytes())
            h.update(np.float64(self.a).tobytes())
            h.update(np.float64(self.b).tobytes())
            h.update(np.float64(self.scale).tobytes())
            h.update(self.weights.tobytes())
            cached = h.hexdigest()
            object.__setattr__(self, "_digest", cached)
        return cached

    @property
    def price_bounds(self) -> tuple[np.ndarray, np.ndarray]:
        return (np.zeros(self.n), np.ones(self.n))

    def validate_prices(self, prices: np.ndarray) -> np.ndarray:
        prices = np.asarray(prices, dtype=np.float64).ravel()
        if prices.shape != (self.n,):
            raise ValueError(f"leader decision shape {prices.shape} != ({self.n},)")
        return np.clip(prices, 0.0, 1.0)

    def make_evaluator(
        self,
        lp_backend: str = "scipy",
        cache_size: int = 4096,
        gap_eps: float = 1e-9,
        memo_size: int = 0,
        compile: bool = True,
        lp_warm_start: bool = False,
    ) -> "BilinearEvaluator":
        """Polymorphic evaluator factory (the pipeline's worker side calls
        this, so bilinear instances ride the same process pool as BCPOP).
        ``lp_backend``/``cache_size``/``lp_warm_start`` are accepted for
        signature compatibility; there is no LP here — bounds are
        analytic."""
        return BilinearEvaluator(
            self, gap_eps=gap_eps, memo_size=memo_size, compile=compile
        )

    # -- analytics -----------------------------------------------------------

    def payoff(self, prices: np.ndarray, selection: np.ndarray) -> float:
        """``g(x, y)`` — the leader's payoff (the follower pays it)."""
        prices = self.validate_prices(prices)
        sel = np.asarray(selection, dtype=bool)
        if sel.shape != (self.m,):
            raise ValueError(f"selection shape {sel.shape} != ({self.m},)")
        take = float(self.weights @ sel) / float(self.weights.sum())
        return float(self.scale * (prices.mean() - self.a) * (take - self.b))

    #: BCPOP-compatible alias (``revenue`` is what engine code calls it).
    def revenue(self, prices: np.ndarray, selection: np.ndarray) -> float:
        return self.payoff(prices, selection)

    def best_response_value(self, prices: np.ndarray) -> float:
        """``min_y g(x, y)`` in closed form (bang-bang)."""
        prices = self.validate_prices(prices)
        lean = float(prices.mean() - self.a)
        side = self.b if lean > 0 else 1.0 - self.b
        return float(-self.scale * abs(lean) * side)

    def best_response(self, prices: np.ndarray) -> np.ndarray:
        """An exact rational reaction (all-ones below ``a``, else empty)."""
        prices = self.validate_prices(prices)
        take_all = prices.mean() < self.a
        return np.full(self.m, bool(take_all))

    def saddle_distance(self, prices: np.ndarray) -> float:
        """``|mean(x) - a|`` — distance to the known optimum in mean
        space; the convergence gate's primary metric."""
        prices = self.validate_prices(prices)
        return float(abs(prices.mean() - self.a))

    @property
    def maximin_value(self) -> float:
        """The known optimum: ``max_x min_y g = 0`` at ``mean(x) = a``."""
        return 0.0


class BilinearEvaluator:
    """Lower-level evaluation service for one bilinear instance.

    Mirrors the :class:`repro.bcpop.evaluate.LowerLevelEvaluator` surface
    the pipeline and algorithms consume (``heuristic_key``,
    ``evaluate_heuristic[_fresh]``, memo, work counters, stats) with the
    analytic best response in place of an LP relaxation.

    The follower's decision rule: score every item with the heuristic and
    take exactly the items scoring **negative** — the unconstrained
    analogue of the covering loop's "pick while demand remains" (an item
    with negative marginal score lowers the follower's objective).  With
    ``COST`` carrying the signed marginal payoff, the optimal policy is
    one terminal away, and the %-gap to the analytic bound tells a
    heuristic exactly how far from rational its reaction is.
    """

    def __init__(
        self,
        instance: BilinearInstance,
        gap_eps: float = 1e-9,
        memo_size: int = 0,
        lp_backend: str = "analytic",
        compile: bool = True,
        timers: HotPathTimers | None = None,
    ) -> None:
        self.instance = instance
        self.gap_eps = gap_eps
        self.lp_backend = lp_backend
        self.memo = EvaluationMemo(memo_size) if memo_size > 0 else None
        self.compile = compile
        self.kernel = CompileCache() if compile else None
        self.lp_warm_start = False  # analytic bounds: nothing to warm-start
        self.timers = timers if timers is not None else HotPathTimers()
        self.n_evaluations = 0
        self.n_lp_solves_saved = 0

    def _solver_for(self, score_fn):
        """Compiled form of a GP tree (cached), or the callable as-is."""
        if self.kernel is not None and isinstance(score_fn, SyntaxTree):
            with self.timers.section("compile"):
                return self.kernel.get(score_fn)
        return score_fn

    # -- feature context -----------------------------------------------------

    def context(self, prices: np.ndarray) -> BilinearContext:
        """Table I feature view of the follower's decision under ``x``."""
        inst = self.instance
        prices = inst.validate_prices(prices)
        w = inst.weights
        lean = float(prices.mean() - inst.a)
        costs = inst.scale * w * lean / float(w.sum())
        m = inst.m
        return BilinearContext(
            costs=costs,
            q_sum=w.copy(),
            q_max=w.copy(),
            coverage=w.copy(),
            demand_total=np.full(m, inst.b),
            residual_total=np.full(m, float(prices.mean())),
            duals=-costs,
            xbar=(costs < 0).astype(np.float64),
            selected=np.zeros(m, dtype=bool),
        )

    # -- evaluator surface ---------------------------------------------------

    def heuristic_key(self, prices, score_fn) -> bytes | None:
        """Memo key (content-addressable solvers only) — same shape as the
        BCPOP evaluator's: (digest, quantized decision, tree form)."""
        if not isinstance(score_fn, SyntaxTree):
            return None
        prices = self.instance.validate_prices(prices)
        quantized = np.round(prices / 1e-9).tobytes()
        return b"|".join(
            (
                self.instance.digest.encode("ascii"),
                quantized,
                score_fn.serialize().encode("ascii"),
            )
        )

    def evaluate_heuristic_fresh(self, prices, score_fn) -> LowerLevelOutcome:
        """One uncached evaluation: score items, take the negatives."""
        inst = self.instance
        prices = inst.validate_prices(prices)
        ctx = self.context(prices)
        solver = self._solver_for(score_fn)
        with self.timers.section("score"):
            scores = np.asarray(solver(ctx), dtype=np.float64)
        if scores.shape != (inst.m,):
            raise ValueError(
                f"score function returned shape {scores.shape}, expected ({inst.m},)"
            )
        selection = np.where(np.isfinite(scores), scores, np.inf) < 0.0
        payoff = inst.payoff(prices, selection)
        bound = inst.best_response_value(prices)
        gap = 100.0 * (payoff - bound) / inst.scale
        self.n_evaluations += 1
        return LowerLevelOutcome(
            prices=prices.copy(),
            selection=selection,
            ll_cost=payoff,
            revenue=payoff,
            gap=gap,
            lower_bound=bound,
            feasible=True,
        )

    def evaluate_heuristic(self, prices, score_fn) -> LowerLevelOutcome:
        key = self.heuristic_key(prices, score_fn) if self.memo is not None else None
        if key is not None:
            found = self.memo.get(key)
            if found is not None:
                return found
        outcome = self.evaluate_heuristic_fresh(prices, score_fn)
        if key is not None:
            self.memo.put(key, outcome)
        return outcome

    @property
    def cache_stats(self) -> dict:
        return {"entries": 0, "hits": 0, "misses": 0, "hit_rate": 0.0}

    @property
    def kernel_stats(self) -> dict:
        if self.kernel is None:
            return {"enabled": False}
        return {"enabled": True, **self.kernel.stats}

    @property
    def memo_stats(self) -> dict:
        if self.memo is None:
            return {"enabled": False}
        return {
            "enabled": True,
            "entries": len(self.memo),
            "capacity": self.memo.maxsize,
            "hits": self.memo.hits,
            "misses": self.memo.misses,
            "evictions": self.memo.evictions,
            "hit_rate": self.memo.hit_rate,
        }


def bilinear_instance(
    n: int = 6,
    m: int = 8,
    a: float = 0.35,
    b: float = 0.5,
    scale: float = 10.0,
    name: str | None = None,
) -> BilinearInstance:
    """The standard gate instance: heterogeneous weights ``1 + j/m``."""
    weights = 1.0 + np.arange(m, dtype=np.float64) / m
    return BilinearInstance(
        n=n,
        weights=weights,
        a=a,
        b=b,
        scale=scale,
        name=name or f"bilinear-n{n}-m{m}",
    )
