"""General bi-level problem abstraction (Program 1) with enumeration tools.

For problems with low-dimensional decision spaces the §II sets can be
computed directly on a grid: the constraint region ``S``, the lower-level
feasible set ``S_L(x)``, the rational reaction set ``P(x)`` (with the
optimistic/pessimistic selection), and the inducible region ``IR``.  This
is what regenerates Fig. 1 and certifies the worked example of §V-B.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

__all__ = ["BilevelPoint", "RationalReaction", "BilevelProblem", "GridBilevelProblem"]


@dataclass(frozen=True)
class BilevelPoint:
    """One (x, y) pair with its classification."""

    x: float
    y: float
    upper_objective: float
    lower_objective: float
    upper_feasible: bool
    lower_feasible: bool
    lower_optimal: bool

    @property
    def bilevel_feasible(self) -> bool:
        """In the inducible region *and* satisfying the UL constraints."""
        return self.upper_feasible and self.lower_feasible and self.lower_optimal


@dataclass(frozen=True)
class RationalReaction:
    """The rational reaction set P(x) for one upper-level decision."""

    x: float
    reactions: tuple[float, ...]  # all optimal lower-level responses found
    lower_value: float            # the (common) optimal LL objective
    feasible: bool                # S_L(x) non-empty

    def optimistic(self, upper_objective: Callable[[float, float], float]) -> float:
        """Leader-friendly selection: the reaction minimizing F (paper's
        optimistic assumption)."""
        if not self.reactions:
            raise ValueError(f"no rational reaction at x={self.x}")
        return min(self.reactions, key=lambda y: upper_objective(self.x, y))

    def pessimistic(self, upper_objective: Callable[[float, float], float]) -> float:
        """Adversarial selection: the reaction maximizing F."""
        if not self.reactions:
            raise ValueError(f"no rational reaction at x={self.x}")
        return max(self.reactions, key=lambda y: upper_objective(self.x, y))


class BilevelProblem:
    """Interface of Program 1 for scalar-objective problems.

    Subclasses provide the two objectives and the two constraint
    predicates; the upper level is minimized by convention (BCPOP's
    maximization is handled by negation where needed).
    """

    def upper_objective(self, x: float, y: float) -> float:
        raise NotImplementedError

    def lower_objective(self, x: float, y: float) -> float:
        raise NotImplementedError

    def upper_feasible(self, x: float, y: float) -> bool:
        """G(x, y) <= 0."""
        raise NotImplementedError

    def lower_feasible(self, x: float, y: float) -> bool:
        """g(x, y) <= 0."""
        raise NotImplementedError


class GridBilevelProblem(BilevelProblem):
    """Enumeration-backed analysis of a :class:`BilevelProblem` over grids.

    Parameters
    ----------
    problem:
        The underlying problem.
    y_grid:
        Candidate lower-level decisions used to approximate ``P(x)``.
    tol:
        Optimality tolerance when collecting the argmin set.
    """

    def __init__(
        self,
        problem: BilevelProblem,
        y_grid: Sequence[float],
        tol: float = 1e-9,
    ) -> None:
        self.problem = problem
        self.y_grid = np.asarray(list(y_grid), dtype=np.float64)
        if self.y_grid.size == 0:
            raise ValueError("empty y grid")
        self.tol = tol

    # Delegation so a GridBilevelProblem is itself a BilevelProblem.
    def upper_objective(self, x: float, y: float) -> float:
        return self.problem.upper_objective(x, y)

    def lower_objective(self, x: float, y: float) -> float:
        return self.problem.lower_objective(x, y)

    def upper_feasible(self, x: float, y: float) -> bool:
        return self.problem.upper_feasible(x, y)

    def lower_feasible(self, x: float, y: float) -> bool:
        return self.problem.lower_feasible(x, y)

    def rational_reaction(self, x: float) -> RationalReaction:
        """P(x) restricted to the y grid."""
        feasible_ys = [y for y in self.y_grid if self.problem.lower_feasible(x, y)]
        if not feasible_ys:
            return RationalReaction(x=x, reactions=(), lower_value=np.inf, feasible=False)
        values = np.array([self.problem.lower_objective(x, y) for y in feasible_ys])
        best = values.min()
        reactions = tuple(
            y for y, v in zip(feasible_ys, values) if v <= best + self.tol
        )
        return RationalReaction(x=x, reactions=reactions, lower_value=float(best), feasible=True)

    def classify(self, x: float, y: float) -> BilevelPoint:
        """Full §II classification of one pair."""
        reaction = self.rational_reaction(x)
        lower_ok = self.problem.lower_feasible(x, y)
        is_optimal = (
            lower_ok
            and reaction.feasible
            and self.problem.lower_objective(x, y) <= reaction.lower_value + self.tol
        )
        return BilevelPoint(
            x=x,
            y=y,
            upper_objective=self.problem.upper_objective(x, y),
            lower_objective=self.problem.lower_objective(x, y),
            upper_feasible=self.problem.upper_feasible(x, y),
            lower_feasible=lower_ok,
            lower_optimal=is_optimal,
        )

    def inducible_region(self, x_grid: Sequence[float]) -> list[BilevelPoint]:
        """IR ∩ (grid): optimistic reactions that satisfy *both* levels.

        Points whose rational reaction violates the UL constraints are
        returned with ``upper_feasible=False`` — those are exactly the
        discontinuities Fig. 1 illustrates.
        """
        out: list[BilevelPoint] = []
        for x in np.asarray(list(x_grid), dtype=np.float64):
            reaction = self.rational_reaction(float(x))
            if not reaction.feasible:
                continue
            y = reaction.optimistic(self.problem.upper_objective)
            out.append(self.classify(float(x), float(y)))
        return out

    def solve_optimistic(self, x_grid: Sequence[float]) -> BilevelPoint | None:
        """Best bi-level feasible point on the grid (minimizing F)."""
        candidates = [p for p in self.inducible_region(x_grid) if p.bilevel_feasible]
        if not candidates:
            return None
        return min(candidates, key=lambda p: p.upper_objective)
