"""The paper's lower-level optimality gap (Eq. 1).

    %-gap(x) = 100 * (A(x) - LB(x)) / LB(x)

where ``A(x)`` is the lower-level value produced by algorithm ``A`` for the
instance induced by upper-level decision ``x`` and ``LB(x)`` a lower bound
(here: the LP relaxation).  The gap is the paper's bi-level feasibility
measure: it is comparable *across different upper-level decisions*, unlike
raw lower-level objective values.
"""

from __future__ import annotations

import math

__all__ = ["percent_gap"]


def percent_gap(value: float, lower_bound: float, eps: float = 1e-9) -> float:
    """Eq. 1 with a guarded denominator.

    Parameters
    ----------
    value:
        Heuristic lower-level objective ``A(x)``; must satisfy
        ``value >= lower_bound`` up to numerical tolerance (a value
        noticeably below a valid lower bound indicates a bug and raises).
    lower_bound:
        ``LB(x)``; an ``inf`` bound (infeasible relaxation) yields an
        ``inf`` gap.
    eps:
        Denominator guard: a zero lower bound (leader prices everything at
        0) would otherwise divide by zero — DESIGN.md §5.
    """
    if math.isinf(lower_bound):
        return math.inf
    if value < lower_bound - 1e-6 * max(1.0, abs(lower_bound)):
        raise ValueError(
            f"heuristic value {value} below the lower bound {lower_bound}: "
            "the bound or the solver is broken"
        )
    denom = max(lower_bound, eps)
    return 100.0 * (value - lower_bound) / denom
