"""The paper's worked linear bi-level example (Program 3 / Fig. 1).

The Mersha–Dempe instance shows why upper-level constraints make the
inducible region discontinuous:

    min  F(x, y) = -x - 2y
    s.t. 2x - 3y >= -12          (upper-level constraints: the follower
         x + y  <= 14             ignores these!)
         min  f(y) = -y
         s.t. -3x + y <= -3
              3x + y  <= 30
              y >= 0

The lower level is one-dimensional and linear, so the rational reaction is
available in closed form: ``P(x) = {min(3x - 3, 30 - 3x)}`` whenever that
value is non-negative.  At ``x = 6`` the reaction is ``y = 12`` which
violates ``2x - 3y >= -12`` — the (6, 12) pairing is upper-level
infeasible, and a leader who instead *assumed* the follower would pick
``y = 8`` (the best UL-feasible response) would be building on a
non-rational reaction.  This is the paper's core motivation for measuring
lower-level optimality (the %-gap) rather than trusting paired values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.bilevel.problem import BilevelPoint, BilevelProblem, GridBilevelProblem, RationalReaction

__all__ = ["LinearLowerLevel", "LinearBilevelExample", "mersha_dempe_example"]


@dataclass(frozen=True)
class LinearLowerLevel:
    """1-D parametric linear lower level:
    ``min d*y  s.t.  a_i x + b_i y <= c_i  ∀i,  y >= 0``.

    Each row is ``(a_i, b_i, c_i)``.  The feasible set for fixed ``x`` is
    an interval, so the optimum sits at a closed-form endpoint.
    """

    d: float
    rows: tuple[tuple[float, float, float], ...]

    def feasible_interval(self, x: float) -> tuple[float, float]:
        """Return ``[lo, hi]`` for ``y`` at this ``x`` (may be empty:
        ``lo > hi``)."""
        lo, hi = 0.0, np.inf
        for a, b, c in self.rows:
            rhs = c - a * x
            if b > 0:
                hi = min(hi, rhs / b)
            elif b < 0:
                lo = max(lo, rhs / b)
            elif rhs < 0:  # 0*y <= negative: infeasible at this x
                return 1.0, 0.0
        return lo, hi

    def rational_reaction(self, x: float) -> RationalReaction:
        """Exact ``P(x)``: endpoint of the interval selected by ``sign(d)``."""
        lo, hi = self.feasible_interval(x)
        if lo > hi + 1e-12:
            return RationalReaction(x=x, reactions=(), lower_value=np.inf, feasible=False)
        if self.d > 0:
            y = lo
        elif self.d < 0:
            if np.isinf(hi):
                return RationalReaction(x=x, reactions=(), lower_value=-np.inf, feasible=True)
            y = hi
        else:
            # Objective indifferent: the whole interval is rational.
            reactions = (lo,) if np.isinf(hi) else (lo, hi)
            return RationalReaction(x=x, reactions=reactions, lower_value=0.0, feasible=True)
        return RationalReaction(
            x=x, reactions=(float(y),), lower_value=float(self.d * y), feasible=True
        )

    def feasible(self, x: float, y: float, tol: float = 1e-9) -> bool:
        if y < -tol:
            return False
        return all(a * x + b * y <= c + tol for a, b, c in self.rows)


@dataclass(frozen=True)
class LinearBilevelExample(BilevelProblem):
    """A 1-D/1-D linear bi-level program with explicit UL constraints.

    ``F(x, y) = fx*x + fy*y`` is minimized subject to UL rows
    ``(g_a, g_b, g_c)`` meaning ``g_a x + g_b y <= g_c``; the lower level
    is a :class:`LinearLowerLevel`.
    """

    fx: float
    fy: float
    upper_rows: tuple[tuple[float, float, float], ...]
    lower: LinearLowerLevel
    x_range: tuple[float, float] = (0.0, 10.0)

    def upper_objective(self, x: float, y: float) -> float:
        return self.fx * x + self.fy * y

    def lower_objective(self, x: float, y: float) -> float:
        return self.lower.d * y

    def upper_feasible(self, x: float, y: float, tol: float = 1e-9) -> bool:
        if x < -tol:
            return False
        return all(a * x + b * y <= c + tol for a, b, c in self.upper_rows)

    def lower_feasible(self, x: float, y: float) -> bool:
        return self.lower.feasible(x, y)

    def rational_reaction(self, x: float) -> RationalReaction:
        return self.lower.rational_reaction(x)

    def inducible_region(self, x_grid: Sequence[float]) -> list[BilevelPoint]:
        """Exact rational reactions over an x grid, each classified
        against the UL constraints (regenerates Fig. 1's data)."""
        out: list[BilevelPoint] = []
        for x in np.asarray(list(x_grid), dtype=np.float64):
            reaction = self.rational_reaction(float(x))
            if not reaction.feasible or not reaction.reactions:
                continue
            y = reaction.optimistic(self.upper_objective)
            out.append(
                BilevelPoint(
                    x=float(x),
                    y=float(y),
                    upper_objective=self.upper_objective(float(x), float(y)),
                    lower_objective=self.lower_objective(float(x), float(y)),
                    upper_feasible=self.upper_feasible(float(x), float(y)),
                    lower_feasible=True,
                    lower_optimal=True,
                )
            )
        return out

    def solve_optimistic(self, n_grid: int = 2001) -> BilevelPoint | None:
        """Best bi-level feasible point over a fine x grid."""
        xs = np.linspace(self.x_range[0], self.x_range[1], n_grid)
        feasible = [p for p in self.inducible_region(xs) if p.bilevel_feasible]
        if not feasible:
            return None
        return min(feasible, key=lambda p: p.upper_objective)

    def solve_pessimistic(self, n_grid: int = 2001) -> BilevelPoint | None:
        """§II's pessimistic case: when ``P(x)`` is not a singleton the
        *adversarial* reaction is assumed.  The leader then minimizes the
        worst-case ``F`` over the grid.  (The paper works in the
        optimistic case "since no optimality guaranties exist in the
        pessimistic case" — this solver exists to make that contrast
        measurable on small examples.)
        """
        xs = np.linspace(self.x_range[0], self.x_range[1], n_grid)
        candidates: list[BilevelPoint] = []
        for x in xs:
            reaction = self.rational_reaction(float(x))
            if not reaction.feasible or not reaction.reactions:
                continue
            y = reaction.pessimistic(self.upper_objective)
            point = BilevelPoint(
                x=float(x),
                y=float(y),
                upper_objective=self.upper_objective(float(x), float(y)),
                lower_objective=self.lower_objective(float(x), float(y)),
                upper_feasible=self.upper_feasible(float(x), float(y)),
                lower_feasible=True,
                lower_optimal=True,
            )
            if point.bilevel_feasible:
                candidates.append(point)
        if not candidates:
            return None
        return min(candidates, key=lambda p: p.upper_objective)

    def as_grid_problem(self, y_grid: Sequence[float]) -> GridBilevelProblem:
        """Grid-enumeration view (used by tests to cross-check the closed
        form against brute force)."""
        return GridBilevelProblem(self, y_grid)


def mersha_dempe_example() -> LinearBilevelExample:
    """Program 3 / Fig. 1: the Mersha & Dempe (2006) instance."""
    return LinearBilevelExample(
        fx=-1.0,
        fy=-2.0,
        upper_rows=(
            (-2.0, 3.0, 12.0),  # 2x - 3y >= -12  <=>  -2x + 3y <= 12
            (1.0, 1.0, 14.0),   # x + y <= 14
        ),
        lower=LinearLowerLevel(
            d=-1.0,
            rows=(
                (-3.0, 1.0, -3.0),  # -3x + y <= -3
                (3.0, 1.0, 30.0),   # 3x + y <= 30
            ),
        ),
        x_range=(1.0, 10.0),
    )


def indifferent_follower_example() -> LinearBilevelExample:
    """An instance where ``P(x)`` is *not* a singleton.

    The follower's objective is constant (``d = 0``) so every feasible
    ``y in [0, 10 - x]`` is rational; the leader minimizes
    ``F = -x - 2y``.  Optimistically the follower "helps" with
    ``y = 10 - x``; pessimistically it answers ``y = 0`` — the two §II
    cases produce different optima, which the tests assert.
    """
    return LinearBilevelExample(
        fx=-1.0,
        fy=-2.0,
        upper_rows=((1.0, 0.0, 8.0),),  # x <= 8
        lower=LinearLowerLevel(
            d=0.0,
            rows=((1.0, 1.0, 10.0),),  # x + y <= 10
        ),
        x_range=(0.0, 8.0),
    )
