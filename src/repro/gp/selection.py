"""Tournament selection (shared by the GP and, at size 2, the GA level)."""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

import numpy as np

__all__ = ["tournament", "tournament_indices"]

T = TypeVar("T")


def tournament_indices(
    fitnesses: Sequence[float],
    n: int,
    rng: np.random.Generator,
    k: int = 2,
    minimize: bool = True,
) -> np.ndarray:
    """Draw ``n`` winners' indices via size-``k`` tournaments.

    NaN/inf fitnesses always lose against finite ones (so broken GP trees
    are selected against rather than crashing the loop).
    """
    fits = np.asarray(fitnesses, dtype=np.float64)
    if fits.size == 0:
        raise ValueError("empty population")
    if k < 1:
        raise ValueError(f"tournament size must be >= 1, got {k}")
    keyed = np.where(np.isfinite(fits), fits, np.inf if minimize else -np.inf)
    entrants = rng.integers(fits.size, size=(n, k))
    entrant_fits = keyed[entrants]
    best = np.argmin(entrant_fits, axis=1) if minimize else np.argmax(entrant_fits, axis=1)
    return entrants[np.arange(n), best]


def tournament(
    population: Sequence[T],
    fitnesses: Sequence[float],
    n: int,
    rng: np.random.Generator,
    k: int = 2,
    minimize: bool = True,
    key: Callable[[T], float] | None = None,
) -> list[T]:
    """Select ``n`` individuals (with replacement) by tournament.

    ``key`` may be given instead of ``fitnesses`` (pass ``fitnesses=None``).
    """
    if key is not None:
        fitnesses = [key(ind) for ind in population]
    if fitnesses is None:
        raise ValueError("either fitnesses or key must be provided")
    if len(population) != len(fitnesses):
        raise ValueError(
            f"population size {len(population)} != fitnesses {len(fitnesses)}"
        )
    idx = tournament_indices(fitnesses, n, rng, k=k, minimize=minimize)
    return [population[i] for i in idx]
