"""Algebraic tree simplification.

Evolved trees accumulate dead weight (``x * 1``, ``x + 0``, constant
subtrees).  Simplification is *not* applied during evolution (it would bias
the search) — it is a reporting/analysis tool: EXPERIMENTS.md shows the
simplified champion heuristics, and tests use it to check semantic
equivalence cheaply.
"""

from __future__ import annotations

import numpy as np

from repro.gp.nodes import Constant, Node, Primitive
from repro.gp.tree import SyntaxTree

__all__ = ["simplify_tree"]


def _fold_constants(nodes: list[Node]) -> list[Node]:
    """Bottom-up constant folding via a post-order stack walk."""
    # Work on the reversed prefix so children are seen before parents.
    stack: list[list[Node]] = []
    with np.errstate(all="ignore"):
        for node in reversed(nodes):
            if node.arity == 0:
                stack.append([node])
                continue
            args = [stack.pop() for _ in range(node.arity)]
            heads = [a[0] for a in args if len(a) == 1]
            if len(heads) == len(args) and all(
                isinstance(h, Constant) for h in heads
            ):
                values = [
                    np.float64(h.value) for h in heads if isinstance(h, Constant)
                ]
                folded = node.fn(*values) if isinstance(node, Primitive) else None
                if folded is not None and np.isfinite(folded):
                    stack.append([Constant(float(folded))])
                    continue
            merged: list[Node] = [node]
            for a in args:
                merged.extend(a)
            stack.append(merged)
    if len(stack) != 1:
        raise ValueError("malformed tree during folding")
    return stack[0]


def _is_const(sub: list[Node] | None, value: float) -> bool:
    if sub is None or len(sub) != 1:
        return False
    head = sub[0]
    return isinstance(head, Constant) and head.value == value


def _apply_identities(nodes: list[Node]) -> list[Node]:
    """One bottom-up pass of local identity rewrites."""
    stack: list[list[Node]] = []
    for node in reversed(nodes):
        if node.arity == 0:
            stack.append([node])
            continue
        args = [stack.pop() for _ in range(node.arity)]
        name = node.name
        a, b = (args + [None, None])[:2]
        rewritten: list[Node] | None = None
        if name == "add":
            if _is_const(a, 0.0):
                rewritten = b
            elif _is_const(b, 0.0):
                rewritten = a
        elif name == "sub":
            if _is_const(b, 0.0):
                rewritten = a
        elif name == "mul":
            if _is_const(a, 1.0):
                rewritten = b
            elif _is_const(b, 1.0):
                rewritten = a
            elif _is_const(a, 0.0) or _is_const(b, 0.0):
                rewritten = [Constant(0.0)]
        elif name == "div":
            if _is_const(b, 1.0):
                rewritten = a
        if rewritten is None:
            rewritten = [node]
            for sub in args:
                rewritten.extend(sub)
        stack.append(rewritten)
    if len(stack) != 1:
        raise ValueError("malformed tree during identity rewriting")
    return stack[0]


def simplify_tree(tree: SyntaxTree, max_passes: int = 8) -> SyntaxTree:
    """Repeatedly fold constants and apply identities until fixpoint.

    The result is semantically equivalent on all inputs where no protected
    operator was triggered with a constant divisor of exactly zero (the
    folding path uses the protected implementations, so even that case
    matches).
    """
    nodes = list(tree.nodes)
    for _ in range(max_passes):
        before = len(nodes)
        nodes = _fold_constants(nodes)
        nodes = _apply_identities(nodes)
        if len(nodes) == before:
            break
    result = SyntaxTree(nodes)
    result.validate()
    return result
