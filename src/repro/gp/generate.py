"""Tree initialization: full, grow, ramped half-and-half (Koza).

Depth conventions match :attr:`SyntaxTree.depth`: a single leaf has depth
0; ``full_tree(depth=d)`` puts every leaf exactly at depth ``d``.
"""

from __future__ import annotations

import numpy as np

from repro.gp.nodes import Node
from repro.gp.primitives import PrimitiveSet
from repro.gp.tree import SyntaxTree

__all__ = ["full_tree", "grow_tree", "ramped_half_and_half"]


def _build(
    pset: PrimitiveSet,
    rng: np.random.Generator,
    depth: int,
    full: bool,
    leaf_probability: float,
) -> list[Node]:
    """Iterative pre-order construction (avoids recursion limits)."""
    nodes: list[Node] = []
    stack = [depth]
    while stack:
        remaining = stack.pop()
        make_leaf = remaining == 0 or (
            not full and rng.random() < leaf_probability
        )
        if make_leaf:
            nodes.append(pset.random_leaf(rng))
        else:
            op = pset.random_operator(rng)
            nodes.append(op)
            stack.extend([remaining - 1] * op.arity)
    return nodes


def full_tree(pset: PrimitiveSet, depth: int, rng: np.random.Generator) -> SyntaxTree:
    """Every branch reaches exactly ``depth``."""
    if depth < 0:
        raise ValueError(f"depth must be >= 0, got {depth}")
    return SyntaxTree(_build(pset, rng, depth, full=True, leaf_probability=0.0))


def grow_tree(
    pset: PrimitiveSet,
    depth: int,
    rng: np.random.Generator,
    leaf_probability: float = 0.3,
) -> SyntaxTree:
    """Branches may stop early with ``leaf_probability`` per node."""
    if depth < 0:
        raise ValueError(f"depth must be >= 0, got {depth}")
    if not (0.0 <= leaf_probability <= 1.0):
        raise ValueError(f"leaf_probability out of [0,1]: {leaf_probability}")
    return SyntaxTree(_build(pset, rng, depth, full=False, leaf_probability=leaf_probability))


def ramped_half_and_half(
    pset: PrimitiveSet,
    n: int,
    rng: np.random.Generator,
    min_depth: int = 1,
    max_depth: int = 4,
) -> list[SyntaxTree]:
    """Koza's standard initializer: depths ramp over ``[min, max]``, half
    the trees per depth are *full* and half *grow*."""
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if min_depth > max_depth:
        raise ValueError(f"min_depth {min_depth} > max_depth {max_depth}")
    depths = np.arange(min_depth, max_depth + 1)
    out: list[SyntaxTree] = []
    for i in range(n):
        depth = int(depths[i % depths.size])
        if i % 2 == 0:
            out.append(full_tree(pset, depth, rng))
        else:
            out.append(grow_tree(pset, depth, rng))
    return out
