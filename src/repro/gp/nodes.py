"""GP node model.

A tree is a flat prefix (pre-order) sequence of nodes — the representation
used by DEAP (the paper's implementation substrate) because it makes
subtree surgery a pair of list slices.  Three node kinds exist:

* :class:`Primitive` — an operator with fixed arity and a *vectorized*
  implementation ``fn(*arrays) -> array``,
* :class:`Terminal`  — a named feature extracted from the greedy context
  (``fn(ctx) -> array`` of length ``n_bundles``),
* :class:`Constant`  — an ephemeral random constant (Koza ERC), broadcast
  over bundles.

Primitives and terminals are interned singletons owned by a
:class:`repro.gp.primitives.PrimitiveSet`; nodes pickle by *name* via
``__reduce__`` so trees can cross process boundaries without shipping
function objects.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

__all__ = ["Node", "Primitive", "Terminal", "Constant"]


class Node:
    """Base class; only the three subclasses below are instantiated."""

    __slots__ = ()
    arity: int = 0
    name: str = ""

    def label(self) -> str:
        """Human-readable token used by ``SyntaxTree.to_infix``."""
        raise NotImplementedError


class Primitive(Node):
    """An operator node (``+``, ``-``, ``*``, protected ``%``/``mod``)."""

    __slots__ = ("name", "arity", "fn", "symbol")

    def __init__(
        self, name: str, arity: int,
        fn: Callable[..., np.ndarray], symbol: str | None = None,
    ) -> None:
        if arity < 1:
            raise ValueError(f"primitive arity must be >= 1, got {arity}")
        self.name = name
        self.arity = arity
        self.fn = fn
        self.symbol = symbol or name

    def __repr__(self) -> str:
        return f"Primitive({self.name}/{self.arity})"

    def label(self) -> str:
        return self.symbol

    def __reduce__(self) -> tuple[Any, ...]:
        from repro.gp.primitives import lookup_primitive

        return (lookup_primitive, (self.name,))


class Terminal(Node):
    """A context feature (Table I terminal): ``fn(ctx) -> (n_bundles,)``."""

    __slots__ = ("name", "fn", "description")
    arity = 0

    def __init__(
        self, name: str, fn: Callable[[Any], np.ndarray], description: str = ""
    ) -> None:
        self.name = name
        self.fn = fn
        self.description = description

    def __repr__(self) -> str:
        return f"Terminal({self.name})"

    def label(self) -> str:
        return self.name

    def __reduce__(self) -> tuple[Any, ...]:
        from repro.gp.primitives import lookup_terminal

        return (lookup_terminal, (self.name,))


class Constant(Node):
    """An ephemeral random constant; value fixed at creation time."""

    __slots__ = ("value",)
    arity = 0
    name = "ERC"

    def __init__(self, value: float) -> None:
        self.value = float(value)

    def __repr__(self) -> str:
        return f"Constant({self.value:g})"

    def label(self) -> str:
        return f"{self.value:.3g}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Constant) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("ERC", self.value))
