"""Genetic-programming hyper-heuristic engine.

CARBON's second population does not evolve lower-level *solutions* but
lower-level *solvers*: greedy scoring functions encoded as GP syntax trees
(paper §IV, Table I).  This package is a self-contained strongly-vectorized
GP engine:

* :mod:`repro.gp.nodes`      — node model (primitives, terminals, constants),
* :mod:`repro.gp.primitives` — the paper's operator & terminal sets
  (Table I) plus the registry used for pickling,
* :mod:`repro.gp.tree`       — prefix-encoded syntax trees with stack-based
  vectorized evaluation over greedy contexts,
* :mod:`repro.gp.generate`   — full / grow / ramped half-and-half,
* :mod:`repro.gp.operators`  — one-point crossover, uniform (subtree)
  mutation, point mutation, reproduction (Table II's GP operators),
* :mod:`repro.gp.selection`  — tournament selection,
* :mod:`repro.gp.simplify`   — constant folding and identity pruning,
* :mod:`repro.gp.compile`    — bytecode lowering with constant folding and
  common-subtree elimination (the hot-path kernel; bit-identical to the
  tree interpreter).
"""

from repro.gp.nodes import Constant, Node, Primitive, Terminal
from repro.gp.primitives import (
    PrimitiveSet,
    paper_operator_set,
    paper_terminal_set,
    paper_primitive_set,
)
from repro.gp.tree import SyntaxTree
from repro.gp.generate import full_tree, grow_tree, ramped_half_and_half
from repro.gp.operators import (
    one_point_crossover,
    uniform_mutation,
    point_mutation,
    reproduce,
)
from repro.gp.selection import tournament
from repro.gp.simplify import simplify_tree
from repro.gp.compile import CompileCache, CompiledProgram, compile_tree
from repro.gp.bloat import lexicographic_tournament, tarpeian_mask
from repro.gp.diversity import (
    entropy_of_shapes,
    primitive_usage,
    size_statistics,
    structural_uniqueness,
)

__all__ = [
    "lexicographic_tournament",
    "tarpeian_mask",
    "entropy_of_shapes",
    "primitive_usage",
    "size_statistics",
    "structural_uniqueness",
    "Node",
    "Primitive",
    "Terminal",
    "Constant",
    "PrimitiveSet",
    "paper_operator_set",
    "paper_terminal_set",
    "paper_primitive_set",
    "SyntaxTree",
    "full_tree",
    "grow_tree",
    "ramped_half_and_half",
    "one_point_crossover",
    "uniform_mutation",
    "point_mutation",
    "reproduce",
    "tournament",
    "simplify_tree",
    "CompileCache",
    "CompiledProgram",
    "compile_tree",
]
