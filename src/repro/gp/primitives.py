"""The paper's GP language (Table I) and the primitive registry.

Operators
---------
``+  -  *  %  mod`` — the two division-like operators are *protected*
(divisor magnitude below ``1e-9`` yields a neutral value instead of
inf/nan), the standard Koza treatment that the paper's "with protection"
notes refer to.

Terminals
---------
Table I lists ``c_j``, ``q_j^k``, ``b^k``, ``d_k``, ``x̄_j``.  A scoring
function must produce one value *per bundle j*, while ``q_j^k``, ``b^k``
and ``d_k`` are indexed by service ``k``; the paper does not spell out the
aggregation, so (documented design choice, DESIGN.md §5) each k-indexed
quantity is exposed through natural per-bundle aggregate views:

========  ==========================================  ==================
terminal  definition                                  Table I source
========  ==========================================  ==================
COST      ``c_j``                                     ``c_j``
QSUM      ``sum_k q_j^k``                             ``q_j^k``
QMAX      ``max_k q_j^k``                             ``q_j^k``
COVER     ``sum_k min(q_j^k, residual_k)`` (dynamic)  ``q_j^k`` + ``b^k``
BSUM      ``sum_k b^k`` (broadcast scalar)            ``b^k``
BRES      ``sum_k residual_k`` (broadcast, dynamic)   ``b^k``
DUAL      ``sum_k d_k q_j^k``                         ``d_k`` + ``q_j^k``
XLP       ``x̄_j``                                     ``x̄_j``
ERC       ephemeral random constant in [-1, 1]        (Koza ERC)
========  ==========================================  ==================

With this vocabulary the classical rules are expressible: Chvátal's rule
is ``COST % COVER``, the primal-dual rule is ``COST - DUAL``, LP-guided is
``0 - XLP`` — tests assert these equivalences against
:mod:`repro.covering.heuristics`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, cast

import numpy as np

from repro.gp.nodes import Constant, Primitive, Terminal

__all__ = [
    "PrimitiveSet",
    "paper_operator_set",
    "paper_terminal_set",
    "paper_primitive_set",
    "lookup_primitive",
    "lookup_terminal",
]

_PROTECT_EPS = 1e-9


def _add(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return a + b


def _sub(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return a - b


def _mul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return a * b


def _protected_div(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``a / b`` with divisor protection: |b| < eps yields 1.0."""
    b = np.asarray(b, dtype=np.float64)
    safe = np.abs(b) > _PROTECT_EPS
    with np.errstate(divide="ignore", invalid="ignore"):
        out = np.divide(a, np.where(safe, b, 1.0))
    return np.where(safe, out, 1.0)


def _protected_mod(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``fmod(a, b)`` with divisor protection: |b| < eps yields 0.0."""
    b = np.asarray(b, dtype=np.float64)
    safe = np.abs(b) > _PROTECT_EPS
    with np.errstate(divide="ignore", invalid="ignore"):
        out = np.fmod(a, np.where(safe, b, 1.0))
    return np.where(safe, out, 0.0)


def _t_cost(ctx: Any) -> np.ndarray:
    return cast(np.ndarray, ctx.costs)


def _t_qsum(ctx: Any) -> np.ndarray:
    return cast(np.ndarray, ctx.q_sum)


def _t_qmax(ctx: Any) -> np.ndarray:
    return cast(np.ndarray, ctx.q_max)


def _t_cover(ctx: Any) -> np.ndarray:
    return cast(np.ndarray, ctx.coverage)


def _t_bsum(ctx: Any) -> np.ndarray:
    return cast(np.ndarray, ctx.demand_total)


def _t_bres(ctx: Any) -> np.ndarray:
    return cast(np.ndarray, ctx.residual_total)


def _t_dual(ctx: Any) -> np.ndarray:
    return cast(np.ndarray, ctx.duals)


def _t_xlp(ctx: Any) -> np.ndarray:
    return cast(np.ndarray, ctx.xbar)


_OPERATORS: dict[str, Primitive] = {
    "add": Primitive("add", 2, _add, "+"),
    "sub": Primitive("sub", 2, _sub, "-"),
    "mul": Primitive("mul", 2, _mul, "*"),
    "div": Primitive("div", 2, _protected_div, "%"),
    "mod": Primitive("mod", 2, _protected_mod, "mod"),
}

_TERMINALS: dict[str, Terminal] = {
    "COST": Terminal("COST", _t_cost, "cost of the current item j (c_j)"),
    "QSUM": Terminal("QSUM", _t_qsum, "total service content of bundle j (sum_k q_j^k)"),
    "QMAX": Terminal("QMAX", _t_qmax, "peak service content of bundle j (max_k q_j^k)"),
    "COVER": Terminal("COVER", _t_cover, "useful residual coverage of bundle j"),
    "BSUM": Terminal("BSUM", _t_bsum, "total required services (sum_k b^k)"),
    "BRES": Terminal("BRES", _t_bres, "remaining required services (dynamic)"),
    "DUAL": Terminal("DUAL", _t_dual, "LP dual-weighted coverage (sum_k d_k q_j^k)"),
    "XLP": Terminal("XLP", _t_xlp, "LP-relaxed solution value for bundle j"),
}


def lookup_primitive(name: str) -> Primitive:
    """Registry lookup used by pickling (:meth:`Primitive.__reduce__`)."""
    return _OPERATORS[name]


def lookup_terminal(name: str) -> Terminal:
    """Registry lookup used by pickling (:meth:`Terminal.__reduce__`)."""
    return _TERMINALS[name]


@dataclass(frozen=True)
class PrimitiveSet:
    """The GP language: operators + terminals + ERC settings.

    Parameters
    ----------
    operators / terminals:
        The available nodes.
    erc_probability:
        Chance that a leaf is an ephemeral constant rather than a terminal.
    erc_range:
        Uniform range ERC values are drawn from.
    """

    operators: tuple[Primitive, ...]
    terminals: tuple[Terminal, ...]
    erc_probability: float = 0.1
    erc_range: tuple[float, float] = (-1.0, 1.0)

    def __post_init__(self) -> None:
        if not self.operators:
            raise ValueError("need at least one operator")
        if not self.terminals:
            raise ValueError("need at least one terminal")
        if not (0.0 <= self.erc_probability <= 1.0):
            raise ValueError(f"erc_probability out of [0,1]: {self.erc_probability}")

    def random_leaf(self, rng: np.random.Generator) -> Terminal | Constant:
        """Draw a terminal or an ERC."""
        if self.erc_probability > 0 and rng.random() < self.erc_probability:
            lo, hi = self.erc_range
            return Constant(rng.uniform(lo, hi))
        return self.terminals[rng.integers(len(self.terminals))]

    def random_operator(self, rng: np.random.Generator) -> Primitive:
        return self.operators[rng.integers(len(self.operators))]

    @property
    def max_arity(self) -> int:
        return max(op.arity for op in self.operators)

    def describe(self) -> list[tuple[str, str]]:
        """(name, description) rows — regenerates the content of Table I."""
        rows = [(op.symbol, f"operator, arity {op.arity}") for op in self.operators]
        rows += [(t.name, t.description) for t in self.terminals]
        if self.erc_probability > 0:
            lo, hi = self.erc_range
            rows.append(("ERC", f"ephemeral constant in [{lo:g}, {hi:g}]"))
        return rows


def paper_operator_set() -> tuple[Primitive, ...]:
    """Table I operators: ``+ - * %(protected) mod(protected)``."""
    return tuple(_OPERATORS[k] for k in ("add", "sub", "mul", "div", "mod"))


def paper_terminal_set() -> tuple[Terminal, ...]:
    """Table I terminals in per-bundle aggregate form (module docstring)."""
    return tuple(
        _TERMINALS[k]
        for k in ("COST", "QSUM", "QMAX", "COVER", "BSUM", "BRES", "DUAL", "XLP")
    )


def paper_primitive_set(
    erc_probability: float = 0.1,
    erc_range: tuple[float, float] = (-1.0, 1.0),
) -> PrimitiveSet:
    """The complete Table I language."""
    return PrimitiveSet(
        operators=paper_operator_set(),
        terminals=paper_terminal_set(),
        erc_probability=erc_probability,
        erc_range=erc_range,
    )
