"""Bloat control for GP populations.

Unchecked GP trees grow (bloat), slowing evaluation and obscuring the
champion heuristics EXPERIMENTS.md reports.  Besides the hard depth/size
limits in :mod:`repro.gp.operators`, two classical soft mechanisms are
provided and ablated in ``bench_ablation_carbon``:

* **lexicographic parsimony tournament** (Luke & Panait 2002): fitness
  decides; ties (within a tolerance) go to the smaller tree,
* **Tarpeian method** (Poli 2003): with probability ``p``, an
  above-average-size individual is assigned the worst possible fitness
  *before* evaluation — saving its evaluation cost entirely.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.gp.tree import SyntaxTree

__all__ = ["lexicographic_tournament", "tarpeian_mask", "mean_size"]


def mean_size(trees: Sequence[SyntaxTree]) -> float:
    """Average node count of a population."""
    if not trees:
        raise ValueError("empty population")
    return float(np.mean([t.size for t in trees]))


def lexicographic_tournament(
    population: Sequence[SyntaxTree],
    fitnesses: Sequence[float],
    n: int,
    rng: np.random.Generator,
    k: int = 3,
    minimize: bool = True,
    fitness_tolerance: float = 1e-9,
) -> list[SyntaxTree]:
    """Size-``k`` tournaments where near-ties are broken by tree size.

    ``fitness_tolerance`` is relative: two fitnesses within
    ``tol * max(1, |better|)`` are considered tied.
    """
    fits = np.asarray(fitnesses, dtype=np.float64)
    if len(population) != fits.size:
        raise ValueError(
            f"population size {len(population)} != fitnesses {fits.size}"
        )
    if fits.size == 0:
        raise ValueError("empty population")
    keyed = np.where(np.isfinite(fits), fits, np.inf if minimize else -np.inf)
    sizes = np.array([t.size for t in population])
    winners: list[SyntaxTree] = []
    for _ in range(n):
        entrants = rng.integers(fits.size, size=k)
        best = entrants[0]
        for e in entrants[1:]:
            a, b = keyed[e], keyed[best]
            if not minimize:
                a, b = -a, -b
            if np.isinf(a) and np.isinf(b):
                # Both worst-possible: size alone decides.
                if sizes[e] < sizes[best]:
                    best = e
                continue
            tol = fitness_tolerance * max(1.0, abs(b)) if np.isfinite(b) else 0.0
            if a < b - tol or (abs(a - b) <= tol and sizes[e] < sizes[best]):
                best = e
        winners.append(population[int(best)])
    return winners


def tarpeian_mask(
    trees: Sequence[SyntaxTree],
    rng: np.random.Generator,
    probability: float = 0.3,
) -> np.ndarray:
    """Boolean mask of individuals to *kill before evaluation*.

    True entries are above-average-size trees unlucky enough to draw the
    Tarpeian lot; the caller assigns them worst fitness without spending
    lower-level evaluations on them.
    """
    if not (0.0 <= probability <= 1.0):
        raise ValueError(f"probability out of [0, 1]: {probability}")
    if not trees:
        return np.zeros(0, dtype=bool)
    sizes = np.array([t.size for t in trees])
    above = sizes > sizes.mean()
    lot = rng.random(len(trees)) < probability
    return above & lot
