"""Prefix-encoded syntax trees with vectorized evaluation.

A :class:`SyntaxTree` is an immutable-by-convention wrapper over a flat
pre-order node list.  Evaluation walks the list once with an explicit
stack; every operand is a *vector over all bundles*, so a single tree
evaluation scores the entire instance — the HPC-guide vectorization idiom
that keeps the greedy solver's hot loop free of per-bundle Python.
"""

from __future__ import annotations

import hashlib
from typing import Any, Iterator, Sequence

import numpy as np

from repro.gp.nodes import Constant, Node, Primitive, Terminal

__all__ = ["SyntaxTree"]


class SyntaxTree:
    """A GP individual: a scoring function over greedy contexts.

    Instances are callable with a :class:`repro.covering.greedy.GreedyContext`
    and return a float array of per-bundle scores (lower = pick first), so a
    tree *is a* ``ScoreFunction`` and plugs straight into
    :func:`repro.covering.greedy.greedy_cover`.
    """

    __slots__ = ("nodes",)

    def __init__(self, nodes: Sequence[Node]) -> None:
        self.nodes: list[Node] = list(nodes)
        if not self.nodes:
            raise ValueError("empty tree")

    # -- structure ---------------------------------------------------------

    @property
    def size(self) -> int:
        """Node count."""
        return len(self.nodes)

    @property
    def depth(self) -> int:
        """Tree depth (single leaf = depth 0, Koza convention)."""
        stack = [0]
        best = 0
        for node in self.nodes:
            d = stack.pop()
            best = max(best, d)
            stack.extend([d + 1] * node.arity)
        return best

    def validate(self) -> None:
        """Raise unless the node list encodes exactly one complete tree."""
        need = 1
        for i, node in enumerate(self.nodes):
            if need <= 0:
                raise ValueError(f"tree has trailing nodes starting at index {i}")
            need += node.arity - 1
        if need != 0:
            raise ValueError(f"tree is truncated: {need} subtrees missing")

    def subtree_end(self, start: int) -> int:
        """Index one past the subtree rooted at ``start``."""
        if not (0 <= start < len(self.nodes)):
            raise IndexError(f"node index {start} out of range")
        need = 1
        i = start
        while need > 0:
            need += self.nodes[i].arity - 1
            i += 1
        return i

    def subtree(self, start: int) -> "SyntaxTree":
        """Copy of the subtree rooted at ``start``."""
        return SyntaxTree(self.nodes[start: self.subtree_end(start)])

    def replace_subtree(self, start: int, replacement: "SyntaxTree") -> "SyntaxTree":
        """New tree with the subtree at ``start`` swapped for ``replacement``."""
        end = self.subtree_end(start)
        return SyntaxTree(self.nodes[:start] + replacement.nodes + self.nodes[end:])

    def copy(self) -> "SyntaxTree":
        return SyntaxTree(self.nodes)

    def iter_subtree_roots(self) -> Iterator[int]:
        yield from range(len(self.nodes))

    def node_depths(self) -> list[int]:
        """Depth of every node, pre-order aligned with ``self.nodes``."""
        stack = [0]
        out: list[int] = []
        for node in self.nodes:
            d = stack.pop()
            out.append(d)
            stack.extend([d + 1] * node.arity)
        return out

    # -- evaluation --------------------------------------------------------

    def evaluate(self, ctx: Any) -> np.ndarray:
        """Score all bundles of ``ctx`` (lower = better).

        Overflow/invalid warnings are suppressed: degenerate trees may
        produce inf/nan, which the greedy solver treats as worst-score.
        """
        n = ctx.costs.shape[0]
        stack: list[np.ndarray] = []
        with np.errstate(all="ignore"):
            for node in reversed(self.nodes):
                if isinstance(node, Primitive):
                    args = [stack.pop() for _ in range(node.arity)]
                    stack.append(node.fn(*args))
                elif isinstance(node, Constant):
                    stack.append(np.full(n, node.value))
                else:
                    assert isinstance(node, Terminal)
                    stack.append(np.asarray(node.fn(ctx), dtype=np.float64))
        if len(stack) != 1:
            raise ValueError(f"malformed tree left {len(stack)} values on the stack")
        result = stack[0]
        if result.shape != (n,):
            result = np.broadcast_to(result, (n,)).astype(np.float64)
        return result

    __call__ = evaluate

    # -- canonical serialization ------------------------------------------

    def serialize(self) -> str:
        """Canonical content-addressed text form: space-separated pre-order
        tokens ``P:<name>`` / ``T:<name>`` / ``C:<float.hex>``.

        Unlike :meth:`to_infix` (which rounds constants for display, so
        structurally different trees can print alike), this form is exact:
        ERC values are rendered with ``float.hex`` so ``serialize →
        deserialize → serialize`` is a fixed point and two trees share a
        serialization iff they are structurally equal.  Used as the memo
        key by :class:`repro.bcpop.evaluate.LowerLevelEvaluator`.
        """
        parts: list[str] = []
        for node in self.nodes:
            if isinstance(node, Constant):
                parts.append(f"C:{float(node.value).hex()}")
            elif isinstance(node, Primitive):
                parts.append(f"P:{node.name}")
            else:
                parts.append(f"T:{node.name}")
        return " ".join(parts)

    @classmethod
    def deserialize(cls, text: str) -> "SyntaxTree":
        """Inverse of :meth:`serialize`; validates the reconstructed tree."""
        from repro.gp.primitives import lookup_primitive, lookup_terminal

        nodes: list[Node] = []
        for token in text.split():
            tag, sep, payload = token.partition(":")
            if not sep:
                raise ValueError(f"malformed token {token!r}")
            if tag == "C":
                nodes.append(Constant(float.fromhex(payload)))
            elif tag == "P":
                nodes.append(lookup_primitive(payload))
            elif tag == "T":
                nodes.append(lookup_terminal(payload))
            else:
                raise ValueError(f"unknown token tag {tag!r} in {token!r}")
        tree = cls(nodes)
        tree.validate()
        return tree

    def stable_hash(self) -> str:
        """SHA-256 hex digest of the canonical serialization — stable
        across processes and sessions (unlike ``hash()``, which is fine
        in-process but not content-addressed)."""
        return hashlib.sha256(self.serialize().encode("ascii")).hexdigest()

    # -- cosmetics ---------------------------------------------------------

    def to_infix(self) -> str:
        """Readable infix rendering, fully parenthesized."""

        def build(i: int) -> tuple[str, int]:
            node = self.nodes[i]
            if node.arity == 0:
                return node.label(), i + 1
            parts = []
            j = i + 1
            for _ in range(node.arity):
                text, j = build(j)
                parts.append(text)
            if node.arity == 2:
                return f"({parts[0]} {node.label()} {parts[1]})", j
            return f"{node.label()}({', '.join(parts)})", j

        text, _ = build(0)
        return text

    def __repr__(self) -> str:
        return f"SyntaxTree({self.to_infix()})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SyntaxTree):
            return NotImplemented
        if len(self.nodes) != len(other.nodes):
            return False
        for a, b in zip(self.nodes, other.nodes):
            if isinstance(a, Constant) or isinstance(b, Constant):
                if a != b:
                    return False
            elif a is not b:
                return False
        return True

    def __hash__(self) -> int:
        parts = tuple(
            ("ERC", n.value) if isinstance(n, Constant) else n.name
            for n in self.nodes
        )
        return hash(parts)
