"""Population diversity analysis for the GP level.

Competitive co-evolution only works while the predator population stays
diverse enough to track the moving prey; these metrics instrument that.
Used by the convergence diagnostics and the ablation benches.
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence

import numpy as np

from repro.gp.nodes import Constant
from repro.gp.tree import SyntaxTree

__all__ = [
    "structural_uniqueness",
    "size_statistics",
    "primitive_usage",
    "entropy_of_shapes",
]


def structural_uniqueness(trees: Sequence[SyntaxTree]) -> float:
    """Fraction of structurally distinct trees in [1/n, 1]."""
    if not trees:
        raise ValueError("empty population")
    return len({hash(t) for t in trees}) / len(trees)


def size_statistics(trees: Sequence[SyntaxTree]) -> dict[str, float]:
    """Min/mean/max of sizes and depths."""
    if not trees:
        raise ValueError("empty population")
    sizes = np.array([t.size for t in trees])
    depths = np.array([t.depth for t in trees])
    return {
        "size_min": float(sizes.min()),
        "size_mean": float(sizes.mean()),
        "size_max": float(sizes.max()),
        "depth_min": float(depths.min()),
        "depth_mean": float(depths.mean()),
        "depth_max": float(depths.max()),
    }


def primitive_usage(trees: Sequence[SyntaxTree]) -> dict[str, float]:
    """Relative frequency of every primitive/terminal across the
    population (ERCs pooled under ``"ERC"``).

    EXPERIMENTS.md uses this to report which Table I ingredients the
    evolved champions actually rely on.
    """
    if not trees:
        raise ValueError("empty population")
    counts: Counter[str] = Counter()
    total = 0
    for tree in trees:
        for node in tree.nodes:
            name = "ERC" if isinstance(node, Constant) else node.name
            counts[name] += 1
            total += 1
    return {name: c / total for name, c in sorted(counts.items())}


def entropy_of_shapes(trees: Sequence[SyntaxTree]) -> float:
    """Shannon entropy (nats) of the distribution of tree hashes.

    0 when the population collapsed to one genotype; ``ln(n)`` when all
    distinct.
    """
    if not trees:
        raise ValueError("empty population")
    counts = Counter(hash(t) for t in trees)
    p = np.array(list(counts.values()), dtype=np.float64)
    p /= p.sum()
    return float(-(p * np.log(p)).sum())
