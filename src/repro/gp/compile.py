"""Bytecode compilation of GP syntax trees (the evaluation hot path).

Every fitness call, served solve, and greedy pass bottoms out in scoring
an instance with a :class:`repro.gp.tree.SyntaxTree`.  The interpreter
walks the node list with per-node ``isinstance`` dispatch and recomputes
duplicated subtrees on every call; this module lowers a tree **once**
into a flat register program (:class:`CompiledProgram`) and then replays
straight-line numpy instructions:

* **Constant folding** — subtrees whose leaves are all ERCs are reduced
  to a single constant at compile time, using the *same* protected
  primitive implementations on ``np.float64`` scalars.  IEEE-754
  elementwise ops are computed per element, so folding a scalar and
  broadcasting the result is bit-identical to broadcasting the operands
  and computing elementwise (non-finite folds included — the greedy
  solver already treats inf/nan as worst-score).
* **Common-subtree elimination** — instructions are keyed by the
  canonical subtree serialization (the exact token stream of
  :meth:`SyntaxTree.serialize`, i.e. the ``stable_hash`` preimage), so a
  duplicated subtree is computed once per evaluation and its register
  reused.  Re-using one deterministic result instead of recomputing it
  is trivially bit-identical.
* **Static/dynamic partition** — terminals are split into *static*
  features (fixed for a whole greedy solve: ``COST QSUM QMAX BSUM DUAL
  XLP``) and *dynamic* ones refreshed at every greedy step (``COVER``,
  ``BRES``).  Instructions depending only on static inputs are hoisted
  into a prefix evaluated once per solve and cached in ``ctx.extras``;
  each greedy step replays only the dynamic suffix.  A program with no
  dynamic input at all (``is_static``) lets the greedy loop hoist the
  *entire* scoring call out of the step loop — the scores are the same
  array at every step, so the selected bundles are unchanged.

The interpreter stays available behind ``ExecutionConfig(compile=False)``
as the differential-testing oracle; the hypothesis suite
(tests/test_gp_compile.py) asserts bit-identity over random trees,
including protected-division edge cases and non-finite folds.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.gp.nodes import Constant, Primitive, Terminal
from repro.gp.tree import SyntaxTree

__all__ = [
    "STATIC_TERMINALS",
    "CompiledProgram",
    "CompileCache",
    "compile_tree",
]

#: Terminals whose value is fixed for one whole greedy solve.  ``COVER``
#: (useful residual coverage) and ``BRES`` (remaining demand) are the two
#: Table-I features :meth:`repro.covering.greedy.GreedyContext.pick`
#: refreshes per step; everything else depends only on (costs, q, demand,
#: relaxation), all constant within a solve.  Unknown terminal names are
#: conservatively treated as dynamic.
STATIC_TERMINALS = frozenset({"COST", "QSUM", "QMAX", "BSUM", "DUAL", "XLP"})

#: ``ctx.extras`` key holding the per-solve static register bank.
_STATE_KEY = "__kernel_static_regs__"

_OP_CONST = 0
_OP_LOAD = 1
_OP_CALL = 2


@dataclass(frozen=True)
class _Instr:
    """One register-machine instruction (write-once destination).

    ``op`` selects the payload: ``_OP_CONST`` broadcasts ``value``,
    ``_OP_LOAD`` reads a terminal feature via ``fn(ctx)``, ``_OP_CALL``
    applies a primitive ``fn`` to the operand registers ``args``.
    """

    op: int
    dest: int
    fn: Callable[..., np.ndarray] | None
    args: tuple[int, ...]
    value: float
    static: bool


@dataclass
class _Desc:
    """Compile-time descriptor of a subtree value.

    ``const`` marks a compile-time constant carried in ``value`` (an ERC
    leaf or a folded subtree); it is materialized into a const-load
    instruction lazily, only when a non-foldable consumer needs a
    register, so constants consumed purely by further folding never hit
    the instruction stream.
    """

    key: str
    static: bool
    const: bool = False
    reg: int = -1
    value: float = 0.0


class CompiledProgram:
    """A syntax tree lowered to straight-line numpy instructions.

    Instances are callable score functions (same contract as
    :class:`SyntaxTree`): ``program(ctx)`` returns the per-bundle score
    vector, bit-identical to ``tree.evaluate(ctx)``.
    """

    __slots__ = (
        "key",
        "source_size",
        "n_regs",
        "root",
        "static_instrs",
        "dynamic_instrs",
        "is_static",
    )

    def __init__(
        self,
        key: str,
        source_size: int,
        n_regs: int,
        root: int,
        static_instrs: tuple[_Instr, ...],
        dynamic_instrs: tuple[_Instr, ...],
    ) -> None:
        self.key = key
        self.source_size = source_size
        self.n_regs = n_regs
        self.root = root
        self.static_instrs = static_instrs
        self.dynamic_instrs = dynamic_instrs
        self.is_static = not dynamic_instrs

    # -- introspection -----------------------------------------------------

    @property
    def n_instructions(self) -> int:
        return len(self.static_instrs) + len(self.dynamic_instrs)

    def __repr__(self) -> str:
        return (
            f"CompiledProgram({self.source_size} nodes -> "
            f"{self.n_instructions} instrs, "
            f"{len(self.static_instrs)} static)"
        )

    # -- execution ---------------------------------------------------------

    @staticmethod
    def _run(
        instrs: tuple[_Instr, ...],
        regs: list[np.ndarray | None],
        ctx: Any,
        n: int,
    ) -> None:
        for ins in instrs:
            fn = ins.fn
            if ins.op == _OP_CALL:
                assert fn is not None
                regs[ins.dest] = fn(*(regs[a] for a in ins.args))
            elif ins.op == _OP_LOAD:
                assert fn is not None
                regs[ins.dest] = np.asarray(fn(ctx), dtype=np.float64)
            else:  # _OP_CONST
                regs[ins.dest] = np.full(n, ins.value)

    def evaluate(self, ctx: Any) -> np.ndarray:
        """Score all bundles of ``ctx`` — bit-identical to the interpreter.

        When ``ctx`` carries an ``extras`` dict (a
        :class:`repro.covering.greedy.GreedyContext`), the static register
        bank is computed on the first call of the solve and replayed on
        every subsequent greedy step; contexts without ``extras`` (e.g.
        the bilinear toy's) simply evaluate everything each call.
        """
        n = int(ctx.costs.shape[0])
        extras = getattr(ctx, "extras", None)
        cacheable = isinstance(extras, dict)
        state: tuple[Any, ...] | None = None
        if cacheable:
            found = extras.get(_STATE_KEY)
            # The bank belongs to exactly one (program, width) pair; a
            # context reused with another tree falls back to a fresh bank.
            if (
                isinstance(found, tuple)
                and found[0] is self
                and found[1] == n
            ):
                state = found
        regs: list[np.ndarray | None]
        with np.errstate(all="ignore"):
            if state is None:
                regs = [None] * self.n_regs
                self._run(self.static_instrs, regs, ctx, n)
                if cacheable:
                    extras[_STATE_KEY] = (self, n, list(regs))
            else:
                regs = list(state[2])
            self._run(self.dynamic_instrs, regs, ctx, n)
        result = regs[self.root]
        assert result is not None
        if result.shape != (n,):
            result = np.broadcast_to(result, (n,)).astype(np.float64)
        return result

    __call__ = evaluate

    def evaluate_stacked(self, ctxs: Sequence[Any]) -> np.ndarray:
        """One vectorized sweep over many contexts: ``(B, n)`` scores.

        The population×instances×items bench path: every instruction
        operates on a ``(B, n)`` feature matrix instead of ``(n,)``, so
        a whole batch of instances is scored per numpy dispatch.
        Elementwise IEEE ops are computed per element, so row ``i`` is
        bit-identical to ``self.evaluate(ctxs[i])``.
        """
        if not ctxs:
            return np.zeros((0, 0))
        n = int(ctxs[0].costs.shape[0])
        b = len(ctxs)
        regs: list[np.ndarray | None] = [None] * self.n_regs
        with np.errstate(all="ignore"):
            for ins in self.static_instrs + self.dynamic_instrs:
                fn = ins.fn
                if ins.op == _OP_CALL:
                    assert fn is not None
                    regs[ins.dest] = fn(*(regs[a] for a in ins.args))
                elif ins.op == _OP_LOAD:
                    assert fn is not None
                    rows = []
                    for ctx in ctxs:
                        row = np.asarray(fn(ctx), dtype=np.float64)
                        if row.shape != (n,):
                            row = np.broadcast_to(row, (n,)).astype(np.float64)
                        rows.append(row)
                    regs[ins.dest] = np.stack(rows)
                else:  # _OP_CONST
                    regs[ins.dest] = np.full((b, n), ins.value)
        result = regs[self.root]
        assert result is not None
        if result.shape != (b, n):
            result = np.broadcast_to(result, (b, n)).astype(np.float64)
        return result


def compile_tree(tree: SyntaxTree) -> CompiledProgram:
    """Lower ``tree`` to a :class:`CompiledProgram` (fold + CSE + split).

    The single pass walks the prefix node list exactly like the
    interpreter (reversed, stack-based) but pushes *descriptors* instead
    of arrays, emitting each unique subtree's instruction once.
    """
    instrs: list[_Instr] = []
    by_key: dict[str, _Desc] = {}
    n_regs = 0

    def _new_reg() -> int:
        nonlocal n_regs
        n_regs += 1
        return n_regs - 1

    def _materialize(desc: _Desc) -> int:
        """Give a folded constant a register (emitted lazily so constants
        consumed only by further folding never hit the instruction
        stream)."""
        if desc.reg < 0:
            desc.reg = _new_reg()
            instrs.append(
                _Instr(_OP_CONST, desc.reg, None, (), desc.value, True)
            )
        return desc.reg

    stack: list[_Desc] = []
    with np.errstate(all="ignore"):
        for node in reversed(tree.nodes):
            if isinstance(node, Primitive):
                if len(stack) < node.arity:
                    raise ValueError(
                        f"malformed tree: {node.name} wants {node.arity} "
                        f"args, stack has {len(stack)}"
                    )
                args = [stack.pop() for _ in range(node.arity)]
                key = f"P:{node.name} " + " ".join(d.key for d in args)
                found = by_key.get(key)
                if found is not None:
                    stack.append(found)  # CSE: reuse the earlier subtree
                    continue
                if all(d.const for d in args):
                    # Constant folding with the exact primitive fns on
                    # float64 scalars — per-element identical to the
                    # broadcast elementwise op the interpreter performs.
                    folded = float(
                        np.asarray(
                            node.fn(*(np.float64(d.value) for d in args))
                        )
                    )
                    desc = _Desc(key=key, static=True, const=True, value=folded)
                else:
                    regs = tuple(_materialize(d) for d in args)
                    static = all(d.static for d in args)
                    dest = _new_reg()
                    instrs.append(
                        _Instr(_OP_CALL, dest, node.fn, regs, 0.0, static)
                    )
                    desc = _Desc(key=key, static=static, reg=dest)
                by_key[key] = desc
                stack.append(desc)
            elif isinstance(node, Constant):
                key = f"C:{float(node.value).hex()}"
                found = by_key.get(key)
                if found is None:
                    found = _Desc(
                        key=key, static=True, const=True, value=float(node.value)
                    )
                    by_key[key] = found
                stack.append(found)
            else:  # Terminal
                assert isinstance(node, Terminal)
                key = f"T:{node.name}"
                found = by_key.get(key)
                if found is None:
                    dest = _new_reg()
                    static = node.name in STATIC_TERMINALS
                    instrs.append(
                        _Instr(_OP_LOAD, dest, node.fn, (), 0.0, static)
                    )
                    found = _Desc(key=key, static=static, reg=dest)
                    by_key[key] = found
                stack.append(found)
    if len(stack) != 1:
        raise ValueError(f"malformed tree left {len(stack)} values on the stack")
    root = _materialize(stack[0])

    # Stable partition: a static instruction only reads static registers,
    # so hoisting the whole static set ahead of the dynamic set (keeping
    # relative order within each) preserves every def-before-use edge.
    static_instrs = tuple(i for i in instrs if i.static)
    dynamic_instrs = tuple(i for i in instrs if not i.static)
    return CompiledProgram(
        key=tree.serialize(),
        source_size=tree.size,
        n_regs=n_regs,
        root=root,
        static_instrs=static_instrs,
        dynamic_instrs=dynamic_instrs,
    )


class CompileCache:
    """LRU cache of :class:`CompiledProgram` objects.

    Keyed on the canonical tree serialization — the same content key the
    evaluation memo embeds (:meth:`LowerLevelEvaluator.heuristic_key`)
    and the preimage of ``stable_hash`` — so structurally equal trees
    share one program across generations, process-pool workers, and
    served registry heuristics.
    """

    def __init__(self, maxsize: int = 1024) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._store: OrderedDict[str, CompiledProgram] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, tree: SyntaxTree) -> CompiledProgram:
        """The compiled form of ``tree``, compiling at most once per
        structurally distinct tree."""
        key = tree.serialize()
        found = self._store.get(key)
        if found is not None:
            self.hits += 1
            self._store.move_to_end(key)
            return found
        self.misses += 1
        program = compile_tree(tree)
        self._store[key] = program
        if len(self._store) > self.maxsize:
            self._store.popitem(last=False)
            self.evictions += 1
        return program

    def clear(self) -> None:
        self._store.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._store)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def stats(self) -> dict[str, Any]:
        return {
            "entries": len(self._store),
            "capacity": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }
