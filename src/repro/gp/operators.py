"""GP variation operators (paper Table II, lower level of CARBON).

* one-point crossover (``(GP) One-point``) — swap random subtrees,
* uniform mutation (``(GP) uniform``) — replace a random subtree by a
  freshly grown one,
* point mutation — same-arity node replacement (extra operator used in
  ablations),
* reproduction — verbatim copy (GP's classical third operator; the paper
  uses probability 0.05).

All operators respect a depth limit (Koza's 17 by default) and a size
limit; a variation that would exceed either returns the parent(s)
unchanged, the standard DEAP ``staticLimit`` behaviour.
"""

from __future__ import annotations

import numpy as np

from repro.gp.nodes import Constant, Primitive
from repro.gp.primitives import PrimitiveSet
from repro.gp.generate import grow_tree
from repro.gp.tree import SyntaxTree

__all__ = [
    "one_point_crossover",
    "uniform_mutation",
    "point_mutation",
    "reproduce",
    "MAX_DEPTH_DEFAULT",
    "MAX_SIZE_DEFAULT",
]

MAX_DEPTH_DEFAULT = 17
MAX_SIZE_DEFAULT = 256


def _pick_point(tree: SyntaxTree, rng: np.random.Generator, internal_bias: float = 0.9) -> int:
    """Koza-style node pick: prefer internal nodes when any exist."""
    internal = [i for i, node in enumerate(tree.nodes) if node.arity > 0]
    leaves = [i for i, node in enumerate(tree.nodes) if node.arity == 0]
    if internal and (not leaves or rng.random() < internal_bias):
        return int(internal[rng.integers(len(internal))])
    return int(leaves[rng.integers(len(leaves))])


def _within_limits(tree: SyntaxTree, max_depth: int, max_size: int) -> bool:
    return tree.size <= max_size and tree.depth <= max_depth


def one_point_crossover(
    a: SyntaxTree,
    b: SyntaxTree,
    rng: np.random.Generator,
    max_depth: int = MAX_DEPTH_DEFAULT,
    max_size: int = MAX_SIZE_DEFAULT,
    retries: int = 3,
) -> tuple[SyntaxTree, SyntaxTree]:
    """Swap one random subtree between ``a`` and ``b``.

    Retries a few times if a child violates the limits; on exhaustion the
    offending child is replaced by a copy of its parent.
    """
    for _ in range(max(1, retries)):
        ia = _pick_point(a, rng)
        ib = _pick_point(b, rng)
        sub_a = a.subtree(ia)
        sub_b = b.subtree(ib)
        child_a = a.replace_subtree(ia, sub_b)
        child_b = b.replace_subtree(ib, sub_a)
        ok_a = _within_limits(child_a, max_depth, max_size)
        ok_b = _within_limits(child_b, max_depth, max_size)
        if ok_a and ok_b:
            return child_a, child_b
    return a.copy(), b.copy()


def uniform_mutation(
    tree: SyntaxTree,
    pset: PrimitiveSet,
    rng: np.random.Generator,
    max_grow_depth: int = 3,
    max_depth: int = MAX_DEPTH_DEFAULT,
    max_size: int = MAX_SIZE_DEFAULT,
    retries: int = 3,
) -> SyntaxTree:
    """Replace a uniformly chosen subtree with a fresh grown subtree."""
    for _ in range(max(1, retries)):
        i = int(rng.integers(tree.size))
        replacement = grow_tree(pset, int(rng.integers(max_grow_depth + 1)), rng)
        child = tree.replace_subtree(i, replacement)
        if _within_limits(child, max_depth, max_size):
            return child
    return tree.copy()


def point_mutation(
    tree: SyntaxTree,
    pset: PrimitiveSet,
    rng: np.random.Generator,
    per_node_probability: float = 0.1,
) -> SyntaxTree:
    """Replace nodes in place with same-arity alternatives.

    Operators swap with other operators of identical arity; leaves swap
    with a random fresh leaf.  ERC leaves may also be jittered.
    """
    nodes = list(tree.nodes)
    for i, node in enumerate(nodes):
        if rng.random() >= per_node_probability:
            continue
        if isinstance(node, Primitive):
            options = [op for op in pset.operators if op.arity == node.arity and op is not node]
            if options:
                nodes[i] = options[rng.integers(len(options))]
        elif isinstance(node, Constant):
            nodes[i] = Constant(node.value + rng.normal(0.0, 0.1 * (1.0 + abs(node.value))))
        else:
            nodes[i] = pset.random_leaf(rng)
    return SyntaxTree(nodes)


def reproduce(tree: SyntaxTree) -> SyntaxTree:
    """Verbatim copy (the GP reproduction operator, Table II p=0.05)."""
    return tree.copy()
