"""Island-model CARBON with ring migration.

The paper ran 30 independent runs on an HPC cluster; an island model is
the natural next step on such hardware: several CARBON instances evolve
in parallel and periodically exchange their best material.  Here the
islands step in deterministic lockstep inside one process (stepping is
cheap relative to evaluations, and determinism keeps experiments
reproducible); every ``migration_interval`` steps each island sends

* its champion heuristic (a GP tree — portable across islands because a
  heuristic solves *any* induced instance, the same property CARBON
  exploits between levels), and
* its best pricing vector

to the next island on a ring, where they enter the archives and displace
the worst population members.  ``benchmarks/bench_islands.py`` measures
what migration buys over the same total budget in isolated runs.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bcpop.instance import BcpopInstance
from repro.core.carbon import Carbon
from repro.core.config import CarbonConfig
from repro.core.results import RunResult
from repro.ga.population import Individual
from repro.parallel.rng import spawn_generators

__all__ = ["IslandCarbon", "run_island_carbon"]


class IslandCarbon:
    """Ring of CARBON islands over one instance.

    Parameters
    ----------
    instance:
        The bi-level pricing problem (shared by all islands).
    config:
        Per-island configuration — budgets are per island.
    n_islands:
        Ring size (>= 1; 1 reduces to plain CARBON).
    migration_interval:
        Co-evolutionary steps between migrations.
    seed:
        Master seed; islands get independent spawned streams.
    """

    def __init__(
        self,
        instance: BcpopInstance,
        config: CarbonConfig | None = None,
        n_islands: int = 4,
        migration_interval: int = 5,
        seed: int = 0,
        lp_backend: str = "scipy",
    ) -> None:
        if n_islands < 1:
            raise ValueError(f"n_islands must be >= 1, got {n_islands}")
        if migration_interval < 1:
            raise ValueError(
                f"migration_interval must be >= 1, got {migration_interval}"
            )
        self.instance = instance
        self.config = config or CarbonConfig.quick()
        self.n_islands = n_islands
        self.migration_interval = migration_interval
        rngs = spawn_generators(seed, n_islands)
        self.islands = [
            Carbon(instance, self.config, rng, lp_backend=lp_backend)
            for rng in rngs
        ]
        self.migrations = 0

    def _migrate(self) -> None:
        """Ring migration: island i's elites enter island (i+1) % K."""
        if self.n_islands < 2:
            return
        # Collect first so the exchange is simultaneous, not cascading.
        parcels = []
        for isl in self.islands:
            champion = isl.ll_archive.best()
            best_price = isl.ul_archive.best()
            parcels.append((champion, best_price))
        for i, isl in enumerate(self.islands):
            champ_entry, price_entry = parcels[(i - 1) % self.n_islands]
            isl.ll_archive.add(champ_entry.item, champ_entry.score, dict(champ_entry.aux))
            isl.ul_archive.add(
                price_entry.item.copy(), price_entry.score, dict(price_entry.aux)
            )
            isl._update_champion()
            # Displace the worst members with the immigrants.
            if isl.ll_pop:
                worst = int(np.argmax([
                    ind.fitness if np.isfinite(ind.fitness) else np.inf
                    for ind in isl.ll_pop
                ]))
                isl.ll_pop[worst] = Individual(
                    genome=champ_entry.item, fitness=champ_entry.score
                )
            if isl.ul_pop:
                worst = int(np.argmin([
                    ind.fitness if np.isfinite(ind.fitness) else -np.inf
                    for ind in isl.ul_pop
                ]))
                isl.ul_pop[worst] = Individual(
                    genome=price_entry.item.copy(),
                    fitness=price_entry.score,
                    aux=dict(price_entry.aux),
                )
        self.migrations += 1

    def run(self, seed_label: int = 0) -> RunResult:
        """Run all islands to budget exhaustion; report the ring's best."""
        start = time.perf_counter()
        for isl in self.islands:
            isl.initialize()
        step = 0
        active = list(self.islands)
        while active:
            active = [isl for isl in active if isl.step()]
            step += 1
            if step % self.migration_interval == 0 and len(active) > 1:
                self._migrate()
        best_isl = min(self.islands, key=lambda isl: isl.ll_archive.best_score())
        best_ul = max(self.islands, key=lambda isl: isl.ul_archive.best_score())
        inner = best_ul.ul_archive.best()
        from repro.core.results import BilevelSolution

        solution = BilevelSolution(
            prices=inner.item,
            selection=inner.aux.get(
                "selection", np.zeros(self.instance.n_bundles, bool)
            ),
            upper_objective=inner.score,
            lower_objective=inner.aux.get("ll_cost", np.nan),
            gap=inner.aux.get("gap", np.nan),
            lower_bound=inner.aux.get("lower_bound", np.nan),
        )
        return RunResult(
            algorithm=f"CARBON-ISLANDS[{self.n_islands}]",
            instance_name=self.instance.name,
            seed=seed_label,
            best_gap=best_isl.ll_archive.best_score(),
            best_upper=inner.score,
            best_solution=solution,
            history=best_isl.history,
            ul_evaluations_used=sum(i.ul_used for i in self.islands),
            ll_evaluations_used=sum(i.ll_used for i in self.islands),
            wall_time=time.perf_counter() - start,
            extras={
                "migrations": self.migrations,
                "per_island_gap": [i.ll_archive.best_score() for i in self.islands],
            },
        )


def run_island_carbon(
    instance: BcpopInstance,
    config: CarbonConfig | None = None,
    n_islands: int = 4,
    migration_interval: int = 5,
    seed: int = 0,
    lp_backend: str = "scipy",
) -> RunResult:
    """Convenience wrapper: one seeded island-model run."""
    return IslandCarbon(
        instance, config=config, n_islands=n_islands,
        migration_interval=migration_interval, seed=seed,
        lp_backend=lp_backend,
    ).run(seed_label=seed)
