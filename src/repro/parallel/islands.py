"""Island-model CARBON with ring migration.

The paper ran 30 independent runs on an HPC cluster; an island model is
the natural next step on such hardware: several CARBON instances evolve
in parallel and periodically exchange their best material.  Here the
islands step in deterministic lockstep inside one process (stepping is
cheap relative to evaluations, and determinism keeps experiments
reproducible); every ``migration_interval`` steps each island sends

* its champion heuristic (a GP tree — portable across islands because a
  heuristic solves *any* induced instance, the same property CARBON
  exploits between levels), and
* its best pricing vector

to the next island on a ring, where they enter the archives and displace
the worst population members (:meth:`repro.core.carbon.Carbon.receive_migrants`
— the islands never reach into each other's internals).  Each exchange
fires ``on_migration`` on the ring's event bus.

``IslandCarbon`` is itself an engine algorithm: one ``step()`` advances
every island one co-evolutionary step, so the ring runs under the same
:class:`~repro.core.engine.EngineLoop` as a single CARBON — checkpoints,
JSONL logs and early stop compose with migration for free, and the
engine's lifecycle closes every island's executor when the run ends.
``benchmarks/bench_islands.py`` measures what migration buys over the
same total budget in isolated runs.
"""

from __future__ import annotations

import numpy as np

from repro.bcpop.instance import BcpopInstance
from repro.core.carbon import Carbon
from repro.core.config import CarbonConfig
from repro.core.engine import EngineAlgorithm, EngineLoop
from repro.core.events import EngineEvent
from repro.core.results import RunResult, solution_from_entry
from repro.parallel.rng import spawn_generators

__all__ = ["IslandCarbon", "run_island_carbon"]


class IslandCarbon(EngineAlgorithm):
    """Ring of CARBON islands over one instance.

    Parameters
    ----------
    instance:
        The bi-level pricing problem (shared by all islands).
    config:
        Per-island configuration — budgets are per island.
    n_islands:
        Ring size (>= 1; 1 reduces to plain CARBON).
    migration_interval:
        Co-evolutionary steps between migrations.
    seed:
        Master seed; islands get independent spawned streams.
    """

    def __init__(
        self,
        instance: BcpopInstance,
        config: CarbonConfig | None = None,
        n_islands: int = 4,
        migration_interval: int = 5,
        seed: int = 0,
        lp_backend: str = "scipy",
    ) -> None:
        if n_islands < 1:
            raise ValueError(f"n_islands must be >= 1, got {n_islands}")
        if migration_interval < 1:
            raise ValueError(
                f"migration_interval must be >= 1, got {migration_interval}"
            )
        self.instance = instance
        self.config = config or CarbonConfig.quick()
        self.n_islands = n_islands
        self.migration_interval = migration_interval
        rngs = spawn_generators(seed, n_islands)
        self.islands = [
            Carbon(instance, self.config, rng, lp_backend=lp_backend)
            for rng in rngs
        ]
        # The ring's ledger aggregates the per-island budgets; actual
        # accounting lives in the islands' own ledgers (budget_used sums
        # them), this one only sizes the totals for display.
        self._engine_init(
            self.config.upper.fitness_evaluations * n_islands,
            self.config.ll_fitness_evaluations * n_islands,
        )
        self.migrations = 0
        self._steps = 0

    # -- engine surface ----------------------------------------------------

    @property
    def name(self) -> str:
        return f"CARBON-ISLANDS[{self.n_islands}]"

    def budget_used(self) -> tuple[int, int]:
        return (
            sum(isl.ul_used for isl in self.islands),
            sum(isl.ll_used for isl in self.islands),
        )

    def generation_metrics(self) -> dict[str, float]:
        """Ring-level telemetry: best/mean over the islands' archives."""
        gaps = [
            isl.ll_archive.best_score() for isl in self.islands if len(isl.ll_archive)
        ]
        fits = [
            isl.ul_archive.best_score() for isl in self.islands if len(isl.ul_archive)
        ]
        return {
            "best_fitness": max(fits) if fits else np.nan,
            "best_gap": min(gaps) if gaps else np.nan,
            "mean_gap": float(np.mean(gaps)) if gaps else np.nan,
        }

    # -- migration ---------------------------------------------------------

    def _migrate(self) -> None:
        """Ring migration: island i's elites enter island (i+1) % K."""
        if self.n_islands < 2:
            return
        # Collect first so the exchange is simultaneous, not cascading.
        parcels = [
            (isl.ll_archive.best(), isl.ul_archive.best()) for isl in self.islands
        ]
        for i, isl in enumerate(self.islands):
            champ_entry, price_entry = parcels[(i - 1) % self.n_islands]
            isl.receive_migrants(champ_entry, price_entry)
        self.migrations += 1
        self.events.migration(
            EngineEvent(
                algorithm=self,
                generation=self.generation,
                data={
                    "migrations": self.migrations,
                    "per_island_gap": [
                        isl.ll_archive.best_score() for isl in self.islands
                    ],
                },
            )
        )

    # -- lifecycle ---------------------------------------------------------

    def initialize(self) -> None:
        for isl in self.islands:
            isl.initialize()
        self.record_point()

    def step(self) -> bool:
        """Advance every island one step; returns False once the whole
        ring is out of budget.  (Stepping an exhausted island is a no-op
        returning False, so no active-list bookkeeping is needed.)"""
        n_active = sum(isl.step() for isl in self.islands)
        if n_active == 0:
            return False
        self._steps += 1
        if self._steps % self.migration_interval == 0 and n_active > 1:
            self._migrate()
        self.record_point()
        return True

    def close(self) -> None:
        """Release every island's executor (first-error-wins, but all
        islands are always attempted)."""
        errors = []
        for isl in self.islands:
            try:
                isl.close()
            except Exception as exc:  # pragma: no cover - close is best-effort
                errors.append(exc)
        if errors:
            raise errors[0]

    # -- extraction ----------------------------------------------------------

    def extract_result(self, seed_label: int, wall_time: float) -> RunResult:
        """Report the ring's best-gap island *coherently*: its gap, its
        best pricing vector, and its history all come from that one
        island (``extras["winner_island"]`` says which); the ring-level
        telemetry history is in ``extras["ring_history"]``."""
        winner_idx = min(
            range(self.n_islands),
            key=lambda i: self.islands[i].ll_archive.best_score(),
        )
        winner = self.islands[winner_idx]
        best_ul = winner.ul_archive.best()
        return RunResult(
            algorithm=self.name,
            instance_name=self.instance.name,
            seed=seed_label,
            best_gap=winner.ll_archive.best_score(),
            best_upper=best_ul.score,
            best_solution=solution_from_entry(best_ul, self.instance.n_bundles),
            history=winner.history,
            ul_evaluations_used=sum(i.ul_used for i in self.islands),
            ll_evaluations_used=sum(i.ll_used for i in self.islands),
            wall_time=wall_time,
            extras={
                "migrations": self.migrations,
                "per_island_gap": [i.ll_archive.best_score() for i in self.islands],
                "winner_island": winner_idx,
                "ring_history": self.history,
            },
        )

    # -- checkpointing -------------------------------------------------------

    def state_dict(self) -> dict:
        """Full override of the engine envelope: the ring has no RNG of
        its own — each island carries its own rng/ledger/history state."""
        return {
            "algorithm": self.name,
            "generation": self.generation,
            "steps": self._steps,
            "migrations": self.migrations,
            "ledger": self.ledger.state_dict(),
            "history": self.history.state_dict(),
            "islands": [isl.state_dict() for isl in self.islands],
        }

    def load_state_dict(self, state: dict) -> None:
        if state["algorithm"] != self.name:
            raise ValueError(
                f"checkpoint is for {state['algorithm']!r}, not {self.name!r}"
            )
        if len(state["islands"]) != self.n_islands:
            raise ValueError(
                f"checkpoint has {len(state['islands'])} islands, ring has "
                f"{self.n_islands}"
            )
        self.generation = int(state["generation"])
        self._steps = int(state["steps"])
        self.migrations = int(state["migrations"])
        self.ledger.load_state_dict(state["ledger"])
        self.history.load_state_dict(state["history"])
        for isl, isl_state in zip(self.islands, state["islands"]):
            isl.load_state_dict(isl_state)


def run_island_carbon(
    instance: BcpopInstance,
    config: CarbonConfig | None = None,
    n_islands: int = 4,
    migration_interval: int = 5,
    seed: int = 0,
    lp_backend: str = "scipy",
    observers=(),
    resume_state: dict | None = None,
) -> RunResult:
    """Convenience wrapper: one seeded, engine-driven island-model run."""
    algorithm = IslandCarbon(
        instance, config=config, n_islands=n_islands,
        migration_interval=migration_interval, seed=seed,
        lp_backend=lp_backend,
    )
    return EngineLoop(algorithm, observers=observers, resume_state=resume_state).run(
        seed_label=seed
    )
