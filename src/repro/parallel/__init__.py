"""Deterministic parallel-evaluation substrate.

The paper ran its experiments on the University of Luxembourg HPC cluster
(30 independent runs per algorithm/instance class).  This package provides
the two pieces needed to reproduce that style of execution on any machine:

* :mod:`repro.parallel.rng` — reproducible, collision-free random streams
  built on :class:`numpy.random.SeedSequence` spawning (the mpi4py idiom of
  rank-indexed seeding, without requiring MPI), and
* :mod:`repro.parallel.executor` — a small executor abstraction with a
  serial backend and a ``multiprocessing`` pool backend for embarrassingly
  parallel population evaluation and independent-run fan-out (plus a
  supervised mode: per-task timeouts, crash-recovering respawn, bounded
  retries, poison-task quarantine), and
* :mod:`repro.parallel.faults` — deterministic fault injection
  (:class:`FaultInjector`) so the failure handling above is chaos-tested
  reproducibly, not sampled from real entropy.
"""

from repro.parallel.rng import RngFactory, spawn_generators, stream_for
from repro.parallel.executor import (
    Executor,
    SerialExecutor,
    ProcessExecutor,
    make_executor,
    parallel_map,
)
from repro.parallel.faults import (
    FaultInjector,
    FaultSpec,
    FaultStats,
    InjectedFault,
    ShardFaultPlan,
    ShardFaultSpec,
)

_LAZY = {"IslandCarbon", "run_island_carbon"}


def __getattr__(name: str):
    # Lazy (PEP 562): islands drive repro.core.Carbon, while the core
    # algorithms use this package's executors — importing islands eagerly
    # would close that cycle at module-import time.
    if name in _LAZY:
        from repro.parallel import islands

        return getattr(islands, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "IslandCarbon",
    "run_island_carbon",
    "RngFactory",
    "spawn_generators",
    "stream_for",
    "Executor",
    "SerialExecutor",
    "ProcessExecutor",
    "make_executor",
    "parallel_map",
    "FaultInjector",
    "FaultSpec",
    "FaultStats",
    "InjectedFault",
    "ShardFaultPlan",
    "ShardFaultSpec",
]
