"""Deterministic parallel-evaluation substrate.

The paper ran its experiments on the University of Luxembourg HPC cluster
(30 independent runs per algorithm/instance class).  This package provides
the two pieces needed to reproduce that style of execution on any machine:

* :mod:`repro.parallel.rng` — reproducible, collision-free random streams
  built on :class:`numpy.random.SeedSequence` spawning (the mpi4py idiom of
  rank-indexed seeding, without requiring MPI), and
* :mod:`repro.parallel.executor` — a small executor abstraction with a
  serial backend and a ``multiprocessing`` pool backend for embarrassingly
  parallel population evaluation and independent-run fan-out.
"""

from repro.parallel.rng import RngFactory, spawn_generators, stream_for
from repro.parallel.executor import (
    Executor,
    SerialExecutor,
    ProcessExecutor,
    make_executor,
    parallel_map,
)
from repro.parallel.islands import IslandCarbon, run_island_carbon

__all__ = [
    "IslandCarbon",
    "run_island_carbon",
    "RngFactory",
    "spawn_generators",
    "stream_for",
    "Executor",
    "SerialExecutor",
    "ProcessExecutor",
    "make_executor",
    "parallel_map",
]
