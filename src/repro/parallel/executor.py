"""Executor abstraction for embarrassingly parallel evaluation.

Population fitness evaluation and independent algorithm runs are both
embarrassingly parallel.  The algorithms in :mod:`repro.core` take an
:class:`Executor` so the same code runs serially (deterministic debugging,
laptop-scale tests) or fanned out over a process pool (the paper's
HPC-cluster setting).

Design notes
------------
* Tasks must be picklable top-level callables when using
  :class:`ProcessExecutor`; the algorithms therefore ship *(seed, config,
  instance)* descriptors rather than live objects with RNG state.
* Chunking matters: for many small tasks the default one-task-per-dispatch
  behaviour of ``multiprocessing.Pool`` is dominated by IPC, so
  :func:`parallel_map` computes a chunk size amortizing dispatch overhead —
  the same consideration as MPI message aggregation.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Any, Callable, Iterable, Sequence

__all__ = [
    "Executor",
    "SerialExecutor",
    "ProcessExecutor",
    "make_executor",
    "parallel_map",
]


class Executor:
    """Interface: map a callable over items, preserving order."""

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> list[Any]:
        raise NotImplementedError

    def close(self) -> None:
        """Release any held resources (no-op for serial)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class SerialExecutor(Executor):
    """Run tasks in the calling process, in order."""

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> list[Any]:
        return [fn(item) for item in items]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "SerialExecutor()"


class ProcessExecutor(Executor):
    """Fan tasks out over a persistent ``multiprocessing`` pool.

    The pool is created lazily on first use and **reused across map calls**
    (and therefore across generations of an evolutionary run) until
    :meth:`close` — spawn cost and worker-side warm caches amortize over
    the whole run instead of being paid per generation.

    Parameters
    ----------
    workers:
        Number of worker processes; defaults to ``os.cpu_count()``.
    chunk_size:
        Tasks per dispatch; ``None`` picks ``ceil(len(items)/(4*workers))``
        which keeps all workers busy while amortizing IPC.

    Notes
    -----
    Batches smaller than ``workers`` are run serially in the calling
    process: they cannot occupy the pool anyway, and for test-scale runs
    the dispatch/IPC overhead (or, on first use, the spawn cost) would
    dominate the work.  Results are identical either way — tasks must be
    pure functions of their item for any executor to be exchangeable.
    """

    def __init__(self, workers: int | None = None, chunk_size: int | None = None) -> None:
        self.workers = (os.cpu_count() or 1) if workers is None else workers
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        self.chunk_size = chunk_size
        self._pool: multiprocessing.pool.Pool | None = None
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    def _ensure_pool(self) -> multiprocessing.pool.Pool:
        if self._closed:
            raise RuntimeError("executor is closed")
        if self._pool is None:
            self._pool = multiprocessing.get_context("spawn").Pool(self.workers)
        return self._pool

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> list[Any]:
        items = list(items)
        if not items:
            return []
        if len(items) < self.workers:
            # Serial fallback needs no pool, so it stays valid after close.
            return [fn(item) for item in items]
        if self._closed:
            # Pool-sized batches after close would silently respawn the
            # pool — a worker leak for any owner that already shut down
            # (e.g. a solve server whose run also closed its pipeline).
            raise RuntimeError("executor is closed")
        chunk = self.chunk_size or max(1, -(-len(items) // (4 * self.workers)))
        return self._ensure_pool().map(fn, items, chunksize=chunk)

    def close(self) -> None:
        """Shut the pool down and join its workers.  Idempotent: a solve
        server and an engine run may share one executor and both close
        it on their way out (double-close must be a no-op, not a crash).
        """
        self._closed = True
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProcessExecutor(workers={self.workers})"


def make_executor(
    kind: str = "serial",
    workers: int | None = None,
    chunk_size: int | None = None,
) -> Executor:
    """Build an executor from a config string (``"serial"`` / ``"processes"``)."""
    if kind == "serial":
        return SerialExecutor()
    if kind == "processes":
        return ProcessExecutor(workers=workers, chunk_size=chunk_size)
    raise ValueError(f"unknown executor kind {kind!r}; expected 'serial' or 'processes'")


def parallel_map(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    executor: Executor | None = None,
) -> list[Any]:
    """Map ``fn`` over ``items`` with ``executor`` (serial by default)."""
    ex = executor or SerialExecutor()
    return ex.map(fn, list(items))
