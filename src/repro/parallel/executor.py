"""Executor abstraction for embarrassingly parallel evaluation.

Population fitness evaluation and independent algorithm runs are both
embarrassingly parallel.  The algorithms in :mod:`repro.core` take an
:class:`Executor` so the same code runs serially (deterministic debugging,
laptop-scale tests) or fanned out over a process pool (the paper's
HPC-cluster setting).

Design notes
------------
* Tasks must be picklable top-level callables when using
  :class:`ProcessExecutor`; the algorithms therefore ship *(seed, config,
  instance)* descriptors rather than live objects with RNG state.
* Chunking matters: for many small tasks the default one-task-per-dispatch
  behaviour of ``multiprocessing.Pool`` is dominated by IPC, so
  :func:`parallel_map` computes a chunk size amortizing dispatch overhead —
  the same consideration as MPI message aggregation.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from repro.parallel.faults import FaultInjector, FaultStats, apply_fault

__all__ = [
    "Executor",
    "SerialExecutor",
    "ProcessExecutor",
    "make_executor",
    "parallel_map",
]


class Executor:
    """Interface: map a callable over items, preserving order."""

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> list[Any]:
        raise NotImplementedError

    def close(self) -> None:
        """Release any held resources (no-op for serial)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class SerialExecutor(Executor):
    """Run tasks in the calling process, in order."""

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> list[Any]:
        return [fn(item) for item in items]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "SerialExecutor()"


# -- supervised worker machinery ---------------------------------------------
#
# The supervised path replaces ``Pool.map`` with one-task-at-a-time
# dispatch to directly-owned worker processes, which is what makes
# crash/hang handling possible at all: ``multiprocessing.Pool`` never
# completes the AsyncResult of a task whose worker died, and cannot
# terminate a single hung worker without tearing the whole pool down.

#: Supervisor poll interval — the latency floor for detecting a dead or
#: hung worker and for picking up results when all workers were quiet on
#: the previous sweep.
_SUPERVISED_POLL = 0.05


#: Extra slack on top of ``task_timeout`` before a task's *start* is
#: overdue.  A freshly spawned worker pays interpreter start-up and
#: imports before it can acknowledge its first task; that cost is not
#: the task's execution time, so it must not eat into the deadline.
_STARTUP_GRACE = 30.0


def _supervised_worker_main(task_queue, result_queue) -> None:
    """Worker loop: acknowledge the task (``start``), apply its planned
    fault (if any), run it, and report ``("ok"|"err", task_id, attempt,
    payload)``.  Any *task* exception is reported, not fatal — only
    injected crashes, supervisor terminations and real interrupts
    (``KeyboardInterrupt``/``SystemExit`` propagate and kill the worker;
    the supervisor's crash path respawns it) end a worker before its
    ``None`` sentinel.  The start-ack is what lets the supervisor run
    the deadline clock over execution time only, not queue wait or
    worker spawn cost."""
    while True:
        message = task_queue.get()
        if message is None:
            return
        task_id, attempt, fn, item, fault = message
        result_queue.put(("start", task_id, attempt, None))
        try:
            apply_fault(fault)
            value = fn(item)
        except Exception as exc:
            result_queue.put(("err", task_id, attempt, f"{type(exc).__name__}: {exc}"))
        else:
            result_queue.put(("ok", task_id, attempt, value))


@dataclass
class _SupervisedWorker:
    """One supervised worker process and its private task/result queues.

    The result queue is per-worker on purpose: a process that dies
    mid-``put`` (a crash is *injected between an enqueue and the exit*,
    and real SIGKILLs land wherever they please) can leave a
    ``multiprocessing.Queue``'s feeder lock held forever.  Private
    queues confine that damage to the dead worker — its queue is
    discarded at retirement — where one shared result queue would wedge
    every surviving worker's reports.

    ``current`` is the in-flight ``(task_id, attempt, deadline)`` or
    ``None`` when idle; matching results against it by *attempt* is what
    drops stale replies from a worker that finished just as its deadline
    expired (the task was already re-dispatched)."""

    process: Any
    task_queue: Any
    result_queue: Any
    current: tuple[int, int, float | None] | None = None


class ProcessExecutor(Executor):
    """Fan tasks out over a persistent ``multiprocessing`` pool.

    The pool is created lazily on first use and **reused across map calls**
    (and therefore across generations of an evolutionary run) until
    :meth:`close` — spawn cost and worker-side warm caches amortize over
    the whole run instead of being paid per generation.

    Parameters
    ----------
    workers:
        Number of worker processes; defaults to ``os.cpu_count()``.
    chunk_size:
        Tasks per dispatch; ``None`` picks ``ceil(len(items)/(4*workers))``
        which keeps all workers busy while amortizing IPC.
    task_timeout:
        Per-task wall-clock deadline in seconds, measured from the
        worker's start-acknowledgement (so spawn cost and queue wait do
        not count against it).  Setting it enables supervision: a task
        past its deadline has its worker terminated and respawned, and
        the task is retried.
    max_retries:
        Bound on re-dispatches per task under supervision.  A task that
        still fails after ``max_retries`` retries is *quarantined*:
        evaluated serially in the calling process (bit-identical — every
        task is a pure function of its item), so one poison task cannot
        burn the whole run.
    fault_injector:
        Optional :class:`repro.parallel.faults.FaultInjector` applied to
        worker-dispatched tasks (enables supervision); the deterministic
        chaos-test hook.
    supervised:
        Force the supervised dispatch path even without a timeout or
        injector (crash detection and respawn still apply).

    Notes
    -----
    Batches smaller than ``workers`` are run serially in the calling
    process: they cannot occupy the pool anyway, and for test-scale runs
    the dispatch/IPC overhead (or, on first use, the spawn cost) would
    dominate the work.  Results are identical either way — tasks must be
    pure functions of their item for any executor to be exchangeable,
    and for exactly the same reason crash recovery (retry, respawn,
    quarantine) never changes results, only wall time and
    :attr:`fault_stats`.
    """

    def __init__(
        self,
        workers: int | None = None,
        chunk_size: int | None = None,
        *,
        task_timeout: float | None = None,
        max_retries: int = 2,
        fault_injector: FaultInjector | None = None,
        supervised: bool = False,
    ) -> None:
        self.workers = (os.cpu_count() or 1) if workers is None else workers
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if task_timeout is not None and task_timeout <= 0:
            raise ValueError(f"task_timeout must be > 0, got {task_timeout}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.chunk_size = chunk_size
        self.task_timeout = task_timeout
        self.max_retries = max_retries
        self.fault_injector = fault_injector
        self.supervised = bool(
            supervised or task_timeout is not None or fault_injector is not None
        )
        self.fault_stats = FaultStats()
        self._pool: multiprocessing.pool.Pool | None = None
        self._sup_ctx = None
        self._sup_workers: list[_SupervisedWorker] = []
        self._dispatched_tasks = 0
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    def _ensure_pool(self) -> multiprocessing.pool.Pool:
        if self._closed:
            raise RuntimeError("executor is closed")
        if self._pool is None:
            self._pool = multiprocessing.get_context("spawn").Pool(self.workers)
        return self._pool

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> list[Any]:
        items = list(items)
        if not items:
            return []
        if len(items) < self.workers:
            # Serial fallback needs no pool, so it stays valid after close.
            return [fn(item) for item in items]
        if self._closed:
            # Pool-sized batches after close would silently respawn the
            # pool — a worker leak for any owner that already shut down
            # (e.g. a solve server whose run also closed its pipeline).
            raise RuntimeError("executor is closed")
        if self.supervised:
            return self._supervised_map(fn, items)
        chunk = self.chunk_size or max(1, -(-len(items) // (4 * self.workers)))
        return self._ensure_pool().map(fn, items, chunksize=chunk)

    # -- supervised dispatch --------------------------------------------------

    def _spawn_supervised_worker(self) -> _SupervisedWorker:
        task_queue = self._sup_ctx.Queue()
        result_queue = self._sup_ctx.Queue()
        process = self._sup_ctx.Process(
            target=_supervised_worker_main,
            args=(task_queue, result_queue),
            name="repro-supervised-worker",
            daemon=True,  # a crashed parent never strands workers
        )
        process.start()
        return _SupervisedWorker(
            process=process, task_queue=task_queue, result_queue=result_queue
        )

    def _ensure_supervised(self) -> None:
        if self._sup_ctx is None:
            self._sup_ctx = multiprocessing.get_context("spawn")
        while len(self._sup_workers) < self.workers:
            self._sup_workers.append(self._spawn_supervised_worker())

    def _retire_worker(self, index: int, terminate: bool) -> None:
        """Replace worker ``index`` (dead, or hung and to be killed)."""
        worker = self._sup_workers[index]
        if terminate and worker.process.is_alive():
            worker.process.terminate()
            worker.process.join(5.0)
            if worker.process.is_alive():  # pragma: no cover - stubborn hang
                worker.process.kill()
                worker.process.join(5.0)
        worker.task_queue.cancel_join_thread()
        worker.task_queue.close()
        worker.result_queue.cancel_join_thread()
        worker.result_queue.close()
        self.fault_stats.respawns += 1
        self._sup_workers[index] = self._spawn_supervised_worker()

    def _supervised_map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> list[Any]:
        """One-task-at-a-time dispatch with liveness and deadline
        supervision.  Results are keyed by task index, so completion
        order (which faults scramble) never affects the returned list."""
        self._ensure_supervised()
        stats = self.fault_stats
        n = len(items)
        results: list[Any] = [None] * n
        attempts = [0] * n
        # Global dispatch numbering: fault plans address tasks by their
        # position in the run's deterministic dispatch sequence.
        base = self._dispatched_tasks
        self._dispatched_tasks += n
        pending: deque[int] = deque(range(n))
        quarantined: list[int] = []

        def fail(task_id: int) -> None:
            if attempts[task_id] > self.max_retries:
                quarantined.append(task_id)
            else:
                stats.retries += 1
                pending.append(task_id)

        while pending or any(w.current is not None for w in self._sup_workers):
            now = time.monotonic()
            # Liveness / deadline sweep before dispatching: a dead or
            # hung worker's task re-enters ``pending`` immediately.
            for index, worker in enumerate(self._sup_workers):
                if not worker.process.is_alive():
                    if worker.current is not None:
                        stats.crashes += 1
                        fail(worker.current[0])
                    self._retire_worker(index, terminate=False)
                elif (
                    worker.current is not None
                    and worker.current[2] is not None
                    and now > worker.current[2]
                ):
                    stats.timeouts += 1
                    task_id = worker.current[0]
                    self._retire_worker(index, terminate=True)
                    fail(task_id)
            for worker in self._sup_workers:
                if worker.current is None and pending:
                    task_id = pending.popleft()
                    attempt = attempts[task_id]
                    attempts[task_id] += 1
                    fault = (
                        self.fault_injector.fault_for(base + task_id, attempt)
                        if self.fault_injector is not None
                        else None
                    )
                    deadline = (
                        time.monotonic() + self.task_timeout + _STARTUP_GRACE
                        if self.task_timeout is not None
                        else None
                    )
                    worker.current = (task_id, attempt, deadline)
                    worker.task_queue.put((task_id, attempt, fn, items[task_id], fault))
            progressed = False
            for worker in self._sup_workers:
                while True:
                    try:
                        kind, task_id, attempt, payload = (
                            worker.result_queue.get_nowait()
                        )
                    except (queue_module.Empty, OSError, ValueError):
                        break  # nothing queued (or the queue died mid-read)
                    progressed = True
                    if worker.current is None or worker.current[:2] != (
                        task_id, attempt,
                    ):
                        continue  # stale reply from an attempt already retired
                    if kind == "start":
                        # The worker picked the task up: from here the
                        # deadline measures execution only (the
                        # dispatch-time deadline included _STARTUP_GRACE
                        # for exactly this reason).
                        if self.task_timeout is not None:
                            worker.current = (
                                task_id, attempt,
                                time.monotonic() + self.task_timeout,
                            )
                        continue
                    worker.current = None
                    if kind == "ok":
                        results[task_id] = payload
                    else:
                        stats.transient_errors += 1
                        fail(task_id)
            if not progressed:
                time.sleep(_SUPERVISED_POLL)

        # Poison tasks: serial in-process fallback.  The memo/dedup/fold
        # path guarantees value equality regardless of where a task ran,
        # so quarantine preserves bit-exact results.
        for task_id in sorted(quarantined):
            stats.quarantined += 1
            results[task_id] = fn(items[task_id])
        return results

    def _close_supervised(self) -> None:
        for worker in self._sup_workers:
            if worker.process.is_alive():
                try:
                    worker.task_queue.put(None)
                except (OSError, ValueError):  # pragma: no cover - queue torn down
                    pass
        for worker in self._sup_workers:
            worker.process.join(5.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(5.0)
            if worker.process.is_alive():  # pragma: no cover - stubborn hang
                worker.process.kill()
                worker.process.join(5.0)
            worker.task_queue.cancel_join_thread()
            worker.task_queue.close()
            worker.result_queue.cancel_join_thread()
            worker.result_queue.close()
        self._sup_workers = []
        self._sup_ctx = None

    def close(self) -> None:
        """Shut the pool down and join its workers.  Idempotent: a solve
        server and an engine run may share one executor and both close
        it on their way out (double-close must be a no-op, not a crash).
        """
        self._closed = True
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None
        self._close_supervised()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mode = ", supervised=True" if self.supervised else ""
        return f"ProcessExecutor(workers={self.workers}{mode})"


def make_executor(
    kind: str = "serial",
    workers: int | None = None,
    chunk_size: int | None = None,
    task_timeout: float | None = None,
    max_retries: int = 2,
    fault_injector: FaultInjector | None = None,
    supervised: bool = False,
) -> Executor:
    """Build an executor from a config string (``"serial"`` / ``"processes"``).

    The supervision knobs (``task_timeout``/``max_retries``/``supervised``
    and the chaos-test ``fault_injector``) only apply to ``"processes"``.
    """
    if kind == "serial":
        return SerialExecutor()
    if kind == "processes":
        return ProcessExecutor(
            workers=workers,
            chunk_size=chunk_size,
            task_timeout=task_timeout,
            max_retries=max_retries,
            fault_injector=fault_injector,
            supervised=supervised,
        )
    raise ValueError(f"unknown executor kind {kind!r}; expected 'serial' or 'processes'")


def parallel_map(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    executor: Executor | None = None,
) -> list[Any]:
    """Map ``fn`` over ``items`` with ``executor`` (serial by default)."""
    ex = executor or SerialExecutor()
    return ex.map(fn, list(items))
