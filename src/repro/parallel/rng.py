"""Reproducible random-stream management.

Evolutionary experiments need many *independent* random streams: one per
algorithm run, plus sub-streams for population initialization, operator
application, and worker processes.  Sharing a single ``Generator`` across
processes silently correlates runs; re-seeding with ``seed + rank`` risks
stream overlap.  The numpy-recommended approach is
:class:`numpy.random.SeedSequence` spawning, which guarantees statistically
independent child streams — the same guarantee MPI codes get from
rank-indexed seed sequences.

Typical use::

    factory = RngFactory(1234)
    run_rngs = factory.spawn(30)          # one generator per independent run
    rng = factory.named("table3", 500, 30, run=7)   # addressable stream
"""

from __future__ import annotations

import hashlib
from collections import Counter
from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = [
    "AuditedGenerator",
    "RngAudit",
    "RngFactory",
    "spawn_generators",
    "stream_for",
]


def _entropy_from_key(key: Sequence[object]) -> int:
    """Hash an addressable key (strings/ints) into SeedSequence entropy.

    Uses BLAKE2 so the mapping is stable across Python processes and
    versions (the builtin ``hash`` is salted per-process and unusable here).
    """
    h = hashlib.blake2b(digest_size=16)
    for part in key:
        h.update(repr(part).encode("utf-8"))
        h.update(b"\x1f")  # unit separator: ("ab","c") != ("a","bc")
    return int.from_bytes(h.digest(), "little")


def spawn_generators(seed: int | np.random.SeedSequence, n: int) -> list[np.random.Generator]:
    """Return ``n`` independent generators derived from ``seed``."""
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    ss = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.Generator(np.random.PCG64(child)) for child in ss.spawn(n)]


def stream_for(seed: int, *key: object) -> np.random.Generator:
    """Return the generator addressed by ``(seed, *key)``.

    The same ``(seed, key)`` always yields the same stream, and distinct
    keys yield independent streams; this lets workers recreate their streams
    locally instead of shipping generator state across process boundaries.
    """
    ss = np.random.SeedSequence(entropy=seed, spawn_key=(_entropy_from_key(key) % (2**63),))
    return np.random.Generator(np.random.PCG64(ss))


class RngFactory:
    """Factory handing out independent, reproducible random streams.

    Parameters
    ----------
    seed:
        Master seed for the whole experiment.  Every stream this factory
        produces is a deterministic function of this seed and the request.
    """

    def __init__(self, seed: int = 0) -> None:
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self.seed = int(seed)
        self._root = np.random.SeedSequence(self.seed)
        self._spawned = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RngFactory(seed={self.seed}, spawned={self._spawned})"

    def spawn(self, n: int) -> list[np.random.Generator]:
        """Return ``n`` fresh independent generators (stateful: successive
        calls never repeat streams)."""
        children = self._root.spawn(n)
        self._spawned += n
        return [np.random.Generator(np.random.PCG64(c)) for c in children]

    def spawn_one(self) -> np.random.Generator:
        """Return a single fresh independent generator."""
        return self.spawn(1)[0]

    def named(self, *key: object) -> np.random.Generator:
        """Return the stream addressed by ``key`` (stateless; same key →
        same stream).  Use for worker processes and resumable runs."""
        return stream_for(self.seed, *key)

    def named_many(self, prefix: Iterable[object], n: int) -> list[np.random.Generator]:
        """Return ``n`` addressed streams ``named(*prefix, i)``."""
        prefix = tuple(prefix)
        return [self.named(*prefix, i) for i in range(n)]


# ---------------------------------------------------------------------------
# RNG-audit sanitizer
# ---------------------------------------------------------------------------

#: Generator draw methods the audit intercepts — every method the
#: algorithms and operators use, plus the common distribution calls.
_AUDITED_METHODS = (
    "random",
    "integers",
    "uniform",
    "normal",
    "standard_normal",
    "choice",
    "shuffle",
    "permutation",
    "permuted",
    "exponential",
    "poisson",
    "binomial",
    "beta",
    "gamma",
    "triangular",
)


def _draw_count(args: tuple, kwargs: dict) -> int:
    """Rough variate count for one draw call (``size``-aware).

    Exactness is irrelevant — both sides of a trace comparison use the
    same estimator — but a size-aware count makes the per-generation
    report meaningful (``integers(n, size=100)`` is 100 draws, not 1).
    """
    size = kwargs.get("size")
    if size is None and args:
        first = args[0]
        if isinstance(first, np.ndarray):
            return int(first.size) or 1
    if size is None:
        return 1
    if isinstance(size, (int, np.integer)):
        return max(int(size), 1)
    try:
        return max(int(np.prod(tuple(size))), 1)
    except TypeError:
        return 1


class RngAudit:
    """Counts RNG draws per (component, generation, method).

    The runtime complement of repro-lint's static R001 pass: the static
    rule proves no draw *bypasses* the seeded streams, the audit proves
    the seeded streams are consumed *identically* across execution
    substrates.  Enabled via ``ExecutionConfig(rng_audit=True)``; the
    engine then wraps each algorithm's generator with
    :meth:`wrap` and reports :meth:`summary` in
    ``RunResult.extras["rng_audit"]``.  The determinism tests assert
    :attr:`trace` equality between serial and parallel runs — a draw
    sneaking into a worker process (or a draw-order change from
    batching) shifts the trace even when the final populations happen
    to coincide.
    """

    def __init__(self) -> None:
        self._trace: list[tuple[str, int, str, int]] = []

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RngAudit(events={len(self._trace)}, draws={self.total_draws})"

    # -- recording ----------------------------------------------------------

    def wrap(
        self,
        rng: np.random.Generator,
        component: str,
        generation: Callable[[], int] | None = None,
    ) -> "AuditedGenerator":
        """Wrap ``rng`` (sharing its bit generator, so the stream is
        unchanged) to record every draw under ``component``.
        ``generation`` is polled at draw time (pass the algorithm's
        generation counter)."""
        return AuditedGenerator(
            rng.bit_generator, audit=self, component=component, generation=generation
        )

    def record(self, component: str, generation: int, method: str, draws: int) -> None:
        self._trace.append((component, int(generation), method, int(draws)))

    def clear(self) -> None:
        self._trace.clear()

    # -- reporting ----------------------------------------------------------

    @property
    def trace(self) -> tuple[tuple[str, int, str, int], ...]:
        """Every draw event in order: (component, generation, method, n)."""
        return tuple(self._trace)

    @property
    def total_draws(self) -> int:
        return sum(n for _, _, _, n in self._trace)

    def draws_by_generation(self) -> dict[int, int]:
        counts: Counter[int] = Counter()
        for _, generation, _, n in self._trace:
            counts[generation] += n
        return dict(sorted(counts.items()))

    def draws_by_component(self) -> dict[str, int]:
        counts: Counter[str] = Counter()
        for component, _, _, n in self._trace:
            counts[component] += n
        return dict(sorted(counts.items()))

    def draws_by_method(self) -> dict[str, int]:
        counts: Counter[str] = Counter()
        for _, _, method, n in self._trace:
            counts[method] += n
        return dict(sorted(counts.items()))

    def summary(self) -> dict:
        """JSON-safe digest for ``RunResult.extras`` / JSONL logs."""
        return {
            "events": len(self._trace),
            "draws": self.total_draws,
            "per_component": self.draws_by_component(),
            "per_method": self.draws_by_method(),
            "per_generation": {
                str(generation): n
                for generation, n in sorted(self.draws_by_generation().items())
            },
        }


class AuditedGenerator(np.random.Generator):
    """A ``numpy.random.Generator`` that reports draws to an :class:`RngAudit`.

    A true subclass sharing the wrapped generator's bit generator: the
    stream of variates is bit-identical to the unwrapped generator, and
    every ``isinstance(rng, np.random.Generator)`` check in the codebase
    keeps passing.  Only the methods in ``_AUDITED_METHODS`` are
    counted; anything else still works, uncounted.
    """

    def __new__(cls, bit_generator, *args, **kwargs):
        # The cython base allocates in __new__ with exactly one
        # argument; the audit plumbing rides on __init__ alone.
        return super().__new__(cls, bit_generator)

    def __init__(
        self,
        bit_generator: np.random.BitGenerator,
        audit: RngAudit | None = None,
        component: str = "",
        generation: Callable[[], int] | None = None,
    ) -> None:
        super().__init__(bit_generator)
        self._audit = audit
        self._component = component
        self._generation = generation or (lambda: -1)

    def _note(self, method: str, args: tuple, kwargs: dict) -> None:
        if self._audit is not None:
            self._audit.record(
                self._component, self._generation(), method, _draw_count(args, kwargs)
            )


def _audited_method(name: str):
    base = getattr(np.random.Generator, name)

    def method(self, *args, **kwargs):
        self._note(name, args, kwargs)
        return base(self, *args, **kwargs)

    method.__name__ = name
    method.__qualname__ = f"AuditedGenerator.{name}"
    method.__doc__ = base.__doc__
    return method


for _name in _AUDITED_METHODS:
    setattr(AuditedGenerator, _name, _audited_method(_name))
del _name
