"""Reproducible random-stream management.

Evolutionary experiments need many *independent* random streams: one per
algorithm run, plus sub-streams for population initialization, operator
application, and worker processes.  Sharing a single ``Generator`` across
processes silently correlates runs; re-seeding with ``seed + rank`` risks
stream overlap.  The numpy-recommended approach is
:class:`numpy.random.SeedSequence` spawning, which guarantees statistically
independent child streams — the same guarantee MPI codes get from
rank-indexed seed sequences.

Typical use::

    factory = RngFactory(1234)
    run_rngs = factory.spawn(30)          # one generator per independent run
    rng = factory.named("table3", 500, 30, run=7)   # addressable stream
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Sequence

import numpy as np

__all__ = ["RngFactory", "spawn_generators", "stream_for"]


def _entropy_from_key(key: Sequence[object]) -> int:
    """Hash an addressable key (strings/ints) into SeedSequence entropy.

    Uses BLAKE2 so the mapping is stable across Python processes and
    versions (the builtin ``hash`` is salted per-process and unusable here).
    """
    h = hashlib.blake2b(digest_size=16)
    for part in key:
        h.update(repr(part).encode("utf-8"))
        h.update(b"\x1f")  # unit separator: ("ab","c") != ("a","bc")
    return int.from_bytes(h.digest(), "little")


def spawn_generators(seed: int | np.random.SeedSequence, n: int) -> list[np.random.Generator]:
    """Return ``n`` independent generators derived from ``seed``."""
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    ss = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.Generator(np.random.PCG64(child)) for child in ss.spawn(n)]


def stream_for(seed: int, *key: object) -> np.random.Generator:
    """Return the generator addressed by ``(seed, *key)``.

    The same ``(seed, key)`` always yields the same stream, and distinct
    keys yield independent streams; this lets workers recreate their streams
    locally instead of shipping generator state across process boundaries.
    """
    ss = np.random.SeedSequence(entropy=seed, spawn_key=(_entropy_from_key(key) % (2**63),))
    return np.random.Generator(np.random.PCG64(ss))


class RngFactory:
    """Factory handing out independent, reproducible random streams.

    Parameters
    ----------
    seed:
        Master seed for the whole experiment.  Every stream this factory
        produces is a deterministic function of this seed and the request.
    """

    def __init__(self, seed: int = 0) -> None:
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self.seed = int(seed)
        self._root = np.random.SeedSequence(self.seed)
        self._spawned = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RngFactory(seed={self.seed}, spawned={self._spawned})"

    def spawn(self, n: int) -> list[np.random.Generator]:
        """Return ``n`` fresh independent generators (stateful: successive
        calls never repeat streams)."""
        children = self._root.spawn(n)
        self._spawned += n
        return [np.random.Generator(np.random.PCG64(c)) for c in children]

    def spawn_one(self) -> np.random.Generator:
        """Return a single fresh independent generator."""
        return self.spawn(1)[0]

    def named(self, *key: object) -> np.random.Generator:
        """Return the stream addressed by ``key`` (stateless; same key →
        same stream).  Use for worker processes and resumable runs."""
        return stream_for(self.seed, *key)

    def named_many(self, prefix: Iterable[object], n: int) -> list[np.random.Generator]:
        """Return ``n`` addressed streams ``named(*prefix, i)``."""
        prefix = tuple(prefix)
        return [self.named(*prefix, i) for i in range(n)]
