"""Deterministic fault injection for chaos-testing the execution layer.

Production means workers die, sockets drop, and responses stall.  This
module makes those failures *reproducible*: a :class:`FaultInjector`
holds an explicit plan — which task index fails, how, and for how many
attempts — so a chaos test can assert the exact number of crashes,
respawns, and retries a run observed (tests/test_fault_injection.py)
instead of sampling flakiness from real entropy.

One plan object drives both fault surfaces:

* **worker processes** — the supervised
  :class:`repro.parallel.executor.ProcessExecutor` ships the matching
  :class:`FaultSpec` with each dispatched task and the worker applies it
  *before* running the task (``crash`` = ``os._exit``, ``hang`` = sleep
  far past any task timeout, ``error`` = raise :class:`InjectedFault`,
  ``slow`` = sleep briefly then compute normally),
* **the serve loop** — :class:`repro.serve.server.SolveServer` consults
  the plan once per accepted solve request (``drop``/``crash`` = abort
  the connection mid-stream, ``error`` = transient ``unavailable``
  reply, ``hang`` = never reply, ``slow`` = delayed reply).

Faults are keyed on ``(task index, attempt)``: ``times=2`` means
attempts 0 and 1 fail and attempt 2 succeeds — the deterministic form of
"two transient failures, then success".  Task indices are global
dispatch counters (the executor numbers every supervised task across the
whole run; the server numbers every solve request in arrival order), so
a plan written against a deterministic run replays exactly.

Because every solve is a pure function of its descriptor, a retried or
respawned task recomputes the *same* value the lost task would have
produced — fault tolerance never costs bit-exactness (DESIGN.md §11).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Iterable

__all__ = [
    "FAULT_KINDS",
    "SHARD_FAULT_KINDS",
    "CRASH_EXIT_CODE",
    "HANG_SECONDS",
    "InjectedFault",
    "FaultSpec",
    "FaultInjector",
    "FaultStats",
    "ShardFaultSpec",
    "ShardFaultPlan",
    "apply_fault",
]

#: Recognized fault kinds.  ``drop`` only has meaning in the serve loop
#: (abort the client connection); workers treat it like ``crash``.
FAULT_KINDS = ("crash", "hang", "error", "slow", "drop")

#: Exit status of an injected worker crash — distinctive on purpose, so a
#: genuine interpreter abort is never mistaken for an injected one.
CRASH_EXIT_CODE = 173

#: How long an injected hang sleeps.  Far past any sane task timeout:
#: the *supervisor's* deadline is what ends the hang, never this sleep.
HANG_SECONDS = 3600.0


class InjectedFault(RuntimeError):
    """The transient exception raised by an ``error`` fault."""


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault: what happens, to which task, how many times.

    Parameters
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    task:
        Global task index the fault applies to (executor dispatch counter
        or serve-request arrival counter).
    times:
        Number of *attempts* affected: attempts ``0 .. times-1`` fault,
        attempt ``times`` runs clean.  The serve loop only ever sees
        attempt 0 (a retransmitted request arrives with a new index).
    seconds:
        Sleep duration for ``slow`` faults (``hang`` always sleeps
        :data:`HANG_SECONDS`).
    """

    kind: str
    task: int
    times: int = 1
    seconds: float = 0.05

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}")
        if self.task < 0:
            raise ValueError(f"task index must be >= 0, got {self.task}")
        if self.times < 1:
            raise ValueError(f"times must be >= 1, got {self.times}")
        if self.seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {self.seconds}")


class FaultInjector:
    """A deterministic fault plan, keyed on ``(task index, attempt)``.

    At most one :class:`FaultSpec` per task index — chaos tests assert
    exact fault counts, and overlapping specs on one task would make the
    realized plan order-dependent.
    """

    def __init__(self, specs: Iterable[FaultSpec] = ()) -> None:
        self._by_task: dict[int, FaultSpec] = {}
        for spec in specs:
            if spec.task in self._by_task:
                raise ValueError(f"duplicate fault spec for task {spec.task}")
            self._by_task[spec.task] = spec

    @property
    def specs(self) -> tuple[FaultSpec, ...]:
        return tuple(self._by_task[task] for task in sorted(self._by_task))

    def fault_for(self, task: int, attempt: int = 0) -> FaultSpec | None:
        """The fault to apply to ``attempt`` of ``task`` (``None`` = run
        clean)."""
        spec = self._by_task.get(task)
        if spec is not None and attempt < spec.times:
            return spec
        return None

    def __len__(self) -> int:
        return len(self._by_task)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        plan = ", ".join(f"{s.kind}@{s.task}x{s.times}" for s in self.specs)
        return f"FaultInjector({plan})"


def apply_fault(spec: FaultSpec | None) -> None:
    """Realize a fault inside a worker process (no-op for ``None``).

    ``crash``/``drop`` never return; ``hang`` sleeps until the
    supervisor's task timeout terminates the worker; ``error`` raises
    :class:`InjectedFault`; ``slow`` sleeps ``spec.seconds`` and returns
    so the task then computes its normal (bit-identical) result.
    """
    if spec is None:
        return
    if spec.kind in ("crash", "drop"):
        os._exit(CRASH_EXIT_CODE)
    elif spec.kind == "hang":
        time.sleep(HANG_SECONDS)
    elif spec.kind == "slow":
        time.sleep(spec.seconds)
    elif spec.kind == "error":
        raise InjectedFault(f"injected transient failure (task {spec.task})")


#: Fault kinds a shard-level plan may name.  They act on a whole shard
#: process / link, not one task: ``kill`` SIGKILLs the shard, ``hang``
#: SIGSTOPs it (alive but unresponsive until the health probe's deadline
#: fires), ``drop`` severs the router→shard connection without touching
#: the process, ``slow`` delays the routing of the triggering request.
SHARD_FAULT_KINDS = ("kill", "hang", "slow", "drop")


@dataclass(frozen=True)
class ShardFaultSpec:
    """One planned shard-level fault: what happens, to which shard, when.

    Parameters
    ----------
    kind:
        One of :data:`SHARD_FAULT_KINDS`.
    shard:
        Name of the shard the fault acts on (``shard-0`` ...), as
        reported by the router's ``shards`` op.
    arrival:
        Router solve-request arrival index that triggers the fault.  The
        router numbers every accepted solve in arrival order (same
        convention as the server's per-request counter), so a plan
        written against a deterministic request stream replays exactly:
        "kill shard-2 when the 40th request arrives".
    seconds:
        Delay for ``slow`` faults.
    """

    kind: str
    shard: str
    arrival: int
    seconds: float = 0.05

    def __post_init__(self) -> None:
        if self.kind not in SHARD_FAULT_KINDS:
            raise ValueError(
                f"unknown shard fault kind {self.kind!r}; expected one of {SHARD_FAULT_KINDS}"
            )
        if not self.shard:
            raise ValueError("shard name must be non-empty")
        if self.arrival < 0:
            raise ValueError(f"arrival index must be >= 0, got {self.arrival}")
        if self.seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {self.seconds}")


class ShardFaultPlan:
    """A deterministic shard-level fault plan, keyed on arrival index.

    The router consults the plan once per accepted solve request —
    *before* routing it — and realizes at most one fault per arrival
    index (overlapping specs would make the realized order depend on
    routing internals, which chaos tests must not).
    """

    def __init__(self, specs: Iterable[ShardFaultSpec] = ()) -> None:
        self._by_arrival: dict[int, ShardFaultSpec] = {}
        for spec in specs:
            if spec.arrival in self._by_arrival:
                raise ValueError(f"duplicate shard fault spec for arrival {spec.arrival}")
            self._by_arrival[spec.arrival] = spec

    @property
    def specs(self) -> tuple[ShardFaultSpec, ...]:
        return tuple(self._by_arrival[arrival] for arrival in sorted(self._by_arrival))

    def fault_at(self, arrival: int) -> ShardFaultSpec | None:
        """The fault triggered by ``arrival`` (``None`` = none planned)."""
        return self._by_arrival.get(arrival)

    def __len__(self) -> int:
        return len(self._by_arrival)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        plan = ", ".join(f"{s.kind}:{s.shard}@{s.arrival}" for s in self.specs)
        return f"ShardFaultPlan({plan})"


@dataclass
class FaultStats:
    """What the supervised executor observed and did about it.

    ``crashes``/``timeouts``/``transient_errors`` count detected faults;
    ``respawns``/``retries``/``quarantined`` count the supervisor's
    responses.  Surfaced through ``RunResult.extras["pipeline"]["faults"]``
    and the solve server's ``stats`` op, and pinned exactly against the
    injection plan by the chaos suite.
    """

    crashes: int = 0  # workers found dead (process exited mid-task)
    timeouts: int = 0  # tasks past their deadline (hung worker terminated)
    transient_errors: int = 0  # tasks that raised in the worker
    respawns: int = 0  # replacement workers started
    retries: int = 0  # task re-dispatches after a fault
    quarantined: int = 0  # poison tasks evaluated serially in-process
    extra: dict = field(default_factory=dict)

    @property
    def faults_seen(self) -> int:
        return self.crashes + self.timeouts + self.transient_errors

    def as_dict(self) -> dict:
        return {
            "crashes": self.crashes,
            "timeouts": self.timeouts,
            "transient_errors": self.transient_errors,
            "respawns": self.respawns,
            "retries": self.retries,
            "quarantined": self.quarantined,
            **self.extra,
        }
