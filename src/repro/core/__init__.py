"""The paper's algorithms: CARBON (contribution) and COBRA (baseline).

* :mod:`repro.core.config`      — Table II parameter sets,
* :mod:`repro.core.archive`     — bounded elite archives (both levels),
* :mod:`repro.core.convergence` — per-generation history (Figs. 4–5),
* :mod:`repro.core.engine`      — the unified run engine: budget ledger,
  algorithm protocol, driver loop (checkpoint/resume, early stop),
* :mod:`repro.core.events`      — typed event bus and stock observers
  (convergence recording, JSONL logging, stagnation stop),
* :mod:`repro.core.checkpoint`  — exact-state checkpoint/resume with
  content checksums, retention rotation and self-healing load,
* :mod:`repro.core.carbon`      — the competitive co-evolutionary
  hyper-heuristic algorithm (§IV),
* :mod:`repro.core.cobra`       — the co-evolutionary baseline
  (Algorithm 1, Legillon et al. 2012),
* :mod:`repro.core.results`     — run/record containers shared by the
  experiment harness.
"""

from repro.core.config import CarbonConfig, CobraConfig
from repro.core.archive import Archive, ArchiveEntry
from repro.core.convergence import ConvergenceHistory, resample_history, seesaw_index
from repro.core.engine import (
    BudgetLedger,
    BudgetMeter,
    CoevolutionAlgorithm,
    EngineAlgorithm,
    EngineLoop,
)
from repro.core.events import (
    EngineEvent,
    EventBus,
    JsonlRunLogger,
    Observer,
    StagnationEarlyStop,
)
from repro.core.checkpoint import (
    CheckpointCorruptError,
    Checkpointer,
    checkpoint_chain,
    load_checkpoint,
    load_latest_checkpoint,
    save_checkpoint,
)
from repro.core.results import RunResult, BilevelSolution, solution_from_entry
from repro.core.carbon import Carbon, run_carbon
from repro.core.cobra import Cobra, run_cobra
from repro.core.nested import NestedSequential, run_nested
from repro.core.surrogate import QuadraticSurrogate, SurrogateAssisted, run_surrogate

__all__ = [
    "NestedSequential",
    "run_nested",
    "QuadraticSurrogate",
    "SurrogateAssisted",
    "run_surrogate",
    "CarbonConfig",
    "CobraConfig",
    "Archive",
    "ArchiveEntry",
    "ConvergenceHistory",
    "resample_history",
    "seesaw_index",
    "BudgetLedger",
    "BudgetMeter",
    "CoevolutionAlgorithm",
    "EngineAlgorithm",
    "EngineLoop",
    "EngineEvent",
    "EventBus",
    "Observer",
    "JsonlRunLogger",
    "StagnationEarlyStop",
    "Checkpointer",
    "CheckpointCorruptError",
    "checkpoint_chain",
    "save_checkpoint",
    "load_checkpoint",
    "load_latest_checkpoint",
    "RunResult",
    "BilevelSolution",
    "solution_from_entry",
    "Carbon",
    "run_carbon",
    "Cobra",
    "run_cobra",
]
