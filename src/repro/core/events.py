"""Typed event bus for the co-evolution engine.

Every engine-driven run emits a small, fixed vocabulary of events:

``on_init``
    Both populations exist and are evaluated (or a checkpoint was
    restored); fired once before the first step.
``on_record``
    The algorithm appended a convergence point.  Fired once per
    generation for CARBON-style loops and once per *phase generation*
    for COBRA (whose see-saw only exists at that granularity).
``on_generation_end``
    One ``step()`` of the outer co-evolutionary loop completed.
``on_migration``
    An island topology exchanged elites.
``on_archive``
    An evaluation-mode opponent pool accepted a new entry
    (:mod:`repro.core.evalmode`); ``event.data`` identifies the pool,
    the stored score and the pool size.
``on_run_end``
    The run finished and its :class:`~repro.core.results.RunResult`
    is available on the event.

Observers subclass :class:`Observer` (all hooks default to no-ops) and
are attached either at algorithm construction (the built-in
:class:`ConvergenceRecorder`) or per run through
:class:`repro.core.engine.EngineLoop`.  Observer exceptions propagate:
an observer is part of the run, not best-effort telemetry.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.engine import EngineLoop
    from repro.core.results import RunResult

__all__ = [
    "EngineEvent",
    "Observer",
    "EventBus",
    "ConvergenceRecorder",
    "JsonlRunLogger",
    "StagnationEarlyStop",
]


@dataclass
class EngineEvent:
    """Context handed to every observer hook.

    ``loop`` is only set for engine-driven runs (``None`` when an
    algorithm is stepped by hand), so observers that request early stop
    must tolerate its absence.
    """

    algorithm: Any
    generation: int = 0
    seed_label: int = 0
    loop: "EngineLoop | None" = None
    elapsed: float = 0.0
    result: "RunResult | None" = None
    #: Per-event payload: convergence metrics for ``on_record``,
    #: migration counters for ``on_migration``.
    data: dict = field(default_factory=dict)


class Observer:
    """Base observer: subclass and override the hooks you need."""

    def on_init(self, event: EngineEvent) -> None:
        """The run is initialized (fresh or restored from checkpoint)."""

    def on_record(self, event: EngineEvent) -> None:
        """A convergence point was recorded (``event.data`` holds it)."""

    def on_generation_end(self, event: EngineEvent) -> None:
        """One outer co-evolutionary step completed."""

    def on_migration(self, event: EngineEvent) -> None:
        """An island topology migrated elites (``event.data`` says what)."""

    def on_archive(self, event: EngineEvent) -> None:
        """An evaluation-mode opponent pool stored an entry."""

    def on_run_end(self, event: EngineEvent) -> None:
        """The run finished; ``event.result`` is the RunResult."""


class EventBus:
    """Dispatches engine events to subscribed observers, in order."""

    _HOOKS = (
        "on_init",
        "on_record",
        "on_generation_end",
        "on_migration",
        "on_archive",
        "on_run_end",
    )

    def __init__(self, observers: tuple[Observer, ...] | list[Observer] = ()) -> None:
        self._observers: list[Observer] = list(observers)

    def subscribe(self, observer: Observer) -> None:
        self._observers.append(observer)

    def unsubscribe(self, observer: Observer) -> None:
        self._observers.remove(observer)

    @property
    def observers(self) -> tuple[Observer, ...]:
        return tuple(self._observers)

    def _emit(self, hook: str, event: EngineEvent) -> None:
        if hook not in self._HOOKS:
            raise ValueError(f"unknown engine event {hook!r}")
        for observer in self._observers:
            getattr(observer, hook)(event)

    def init(self, event: EngineEvent) -> None:
        self._emit("on_init", event)

    def record(self, event: EngineEvent) -> None:
        self._emit("on_record", event)

    def generation_end(self, event: EngineEvent) -> None:
        self._emit("on_generation_end", event)

    def migration(self, event: EngineEvent) -> None:
        self._emit("on_migration", event)

    def archive(self, event: EngineEvent) -> None:
        self._emit("on_archive", event)

    def run_end(self, event: EngineEvent) -> None:
        self._emit("on_run_end", event)


class ConvergenceRecorder(Observer):
    """Absorbs the per-algorithm ``_record`` bodies: every ``on_record``
    event appends its metrics to the run's
    :class:`~repro.core.convergence.ConvergenceHistory`.

    Installed on every algorithm's bus at construction, so direct
    ``initialize()``/``step()`` driving records exactly as engine-driven
    runs do.
    """

    def __init__(self, history) -> None:
        self.history = history

    def on_record(self, event: EngineEvent) -> None:
        self.history.record(**event.data)


class JsonlRunLogger(Observer):
    """Structured JSONL run log, one object per line.

    Per-generation lines and the final ``run_end`` line share the flat
    schema of :meth:`repro.core.results.RunResult.summary_row`
    (``tests/test_engine_observers.py`` pins this), so downstream table
    code can consume either.  Lines are written with a single atomic
    ``write`` in append mode, which keeps logs from concurrent worker
    processes intact.

    Non-finite metrics are emitted as the JSON extensions ``NaN`` /
    ``Infinity`` (what :func:`json.loads` reads back).
    """

    def __init__(self, path, append: bool = True) -> None:
        self.path = path
        if not append:
            with open(self.path, "w"):
                pass

    def _write(self, record: dict) -> None:
        with open(self.path, "a") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")

    def _row(self, event: EngineEvent) -> dict:
        """The summary_row-shaped snapshot of a live run."""
        from repro.core.results import RunResult

        algo = event.algorithm
        ul_used, ll_used = algo.budget_used()
        best_gap = best_upper = float("nan")
        if len(algo.history):
            point = algo.history.points[-1]
            best_gap = point.best_gap
            best_upper = point.best_fitness
        return RunResult.flat_row(
            algorithm=algo.name,
            instance=algo.instance.name,
            seed=event.seed_label,
            best_gap=best_gap,
            best_upper=best_upper,
            ul_evals=ul_used,
            ll_evals=ll_used,
            wall_time=event.elapsed,
        )

    def on_init(self, event: EngineEvent) -> None:
        self._write({"event": "init", "generation": event.generation, **self._row(event)})

    def on_generation_end(self, event: EngineEvent) -> None:
        self._write(
            {"event": "generation", "generation": event.generation, **self._row(event)}
        )

    def on_migration(self, event: EngineEvent) -> None:
        self._write(
            {
                "event": "migration",
                "generation": event.generation,
                **event.data,
                **self._row(event),
            }
        )

    def on_archive(self, event: EngineEvent) -> None:
        self._write(
            {
                "event": "archive",
                "generation": event.generation,
                **event.data,
                **self._row(event),
            }
        )

    def on_run_end(self, event: EngineEvent) -> None:
        if event.result is None:
            # Aborted run: no RunResult exists, but the log still closes
            # with a run_end line carrying the failure and the last
            # known summary-row snapshot.
            self._write(
                {
                    "event": "run_end",
                    "generation": event.generation,
                    "aborted": True,
                    "error": event.data.get("error"),
                    **self._row(event),
                }
            )
            return
        self._write(
            {
                "event": "run_end",
                "generation": event.generation,
                **event.result.summary_row(),
            }
        )


class StagnationEarlyStop(Observer):
    """Stop the run when a convergence metric stops improving.

    Watches the run's :class:`ConvergenceHistory` (the series machinery
    of :mod:`repro.core.convergence`): after ``patience`` consecutive
    ``on_generation_end`` events without at least ``min_delta``
    improvement of ``metric`` (``"gap"`` minimized, ``"fitness"``
    maximized), it asks the driving loop to stop.  A no-op for runs that
    are stepped by hand (no loop to stop).
    """

    def __init__(self, patience: int = 25, metric: str = "gap", min_delta: float = 0.0) -> None:
        if patience < 1:
            raise ValueError(f"patience must be >= 1, got {patience}")
        if metric not in ("gap", "fitness"):
            raise ValueError(f"metric must be 'gap' or 'fitness', got {metric!r}")
        self.patience = patience
        self.metric = metric
        self.min_delta = min_delta
        self._best: float | None = None
        self._stalled = 0

    def _improved(self, value: float) -> bool:
        if not np.isfinite(value):
            return False
        if self._best is None:
            return True
        if self.metric == "gap":
            return value < self._best - self.min_delta
        return value > self._best + self.min_delta

    def on_generation_end(self, event: EngineEvent) -> None:
        history = event.algorithm.history
        if not len(history):
            return
        point = history.points[-1]
        value = point.best_gap if self.metric == "gap" else point.best_fitness
        if self._improved(value):
            self._best = value
            self._stalled = 0
        else:
            self._stalled += 1
        if self._stalled >= self.patience and event.loop is not None:
            event.loop.request_stop(
                f"stagnation: no {self.metric} improvement in {self.patience} generations"
            )
