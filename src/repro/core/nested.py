"""Nested-sequential baseline (taxonomy branch NSQ/CST, paper §III).

The "legacy" bi-level metaheuristic the taxonomy's first branch
describes: a single GA evolves upper-level decisions, and *every* fitness
evaluation solves the induced lower-level instance from scratch with a
fixed solver.  Two lower-level solvers are offered:

* ``"chvatal"`` — the classical greedy rule (fast, the usual choice),
* ``"exact"``   — LP-based branch & bound (the paper's "very time
  consuming" caveat made concrete: one UL evaluation may cost thousands
  of LL nodes).

Against CARBON this isolates the value of *evolving* the lower-level
solver: the nested baseline pays one LL solve per UL evaluation exactly
like CARBON's champion pairing, but its solver never improves, so its gap
is pinned at the fixed heuristic's quality while CARBON's keeps falling.
The exact variant has a ~0 gap but burns orders of magnitude more LL
effort per UL evaluation — the trade-off that motivated metaheuristics at
the lower level in the first place.
"""

from __future__ import annotations

import numpy as np

from typing import TYPE_CHECKING

from repro.bcpop.evaluate import EvaluationPipeline
from repro.bcpop.instance import BcpopInstance
from repro.parallel.executor import Executor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.config import EvalModeConfig
from repro.core.archive import Archive
from repro.core.config import UpperLevelConfig
from repro.core.engine import EngineAlgorithm, EngineLoop
from repro.core.results import RunResult, solution_from_entry
from repro.covering.exact import solve_exact
from repro.covering.heuristics import make_heuristic
from repro.ga.encoding import Bounds
from repro.ga.operators import polynomial_mutation, sbx_crossover
from repro.ga.population import Individual, random_real_population
from repro.ga.selection import binary_tournament

__all__ = ["NestedSequential", "run_nested"]


class NestedSequential(EngineAlgorithm):
    """Nested GA: evolve prices, re-solve the follower every evaluation.

    Parameters
    ----------
    instance:
        The bi-level pricing problem.
    config:
        Upper-level GA settings (population, budget, operators); the LL
        side has no parameters beyond the solver choice.
    ll_solver:
        ``"chvatal"``, any other :data:`repro.covering.heuristics`
        name, or ``"exact"``.
    exact_node_budget:
        Branch-and-bound node cap per LL solve for ``"exact"``.
    executor:
        Optional evaluation substrate: population batches of heuristic
        solves fan out over it (the ``"exact"`` solver and the stochastic
        ``"random"`` heuristic always evaluate in-process — the first to
        keep B&B accounting simple, the second to preserve the parent RNG
        sequence).  Results are executor-invariant.
    """

    def __init__(
        self,
        instance: BcpopInstance,
        config: UpperLevelConfig | None = None,
        rng: np.random.Generator | None = None,
        ll_solver: str = "chvatal",
        lp_backend: str = "scipy",
        exact_node_budget: int = 2_000,
        executor: Executor | None = None,
        eval_mode: "EvalModeConfig | None" = None,
    ) -> None:
        self.instance = instance
        self.config = config or UpperLevelConfig()
        self.rng = self._init_rng(rng, component="nested")
        self.evaluator = instance.make_evaluator(lp_backend=lp_backend)
        self.executor = executor
        self.pipeline = EvaluationPipeline(self.evaluator, executor)
        self.bounds = Bounds(*instance.price_bounds)
        self.ll_solver = ll_solver
        self.exact_node_budget = exact_node_budget
        mode = self._init_eval_mode(eval_mode)
        if ll_solver != "exact":
            # Resolve eagerly so an unknown name fails at construction.
            self._score_fn = make_heuristic(ll_solver, rng=self.rng)
            # Nested has no evolving follower, so non-``current`` modes
            # grade each pricing vector against a fixed *ensemble* of
            # classical solvers (the primary one first) and fold the
            # payoffs per the mode (worst-case under archive, etc.) —
            # the static analogue of an opponent archive.
            self._solver_panel = [self._score_fn]
            if not mode.is_current:
                others = [
                    name
                    for name in ("chvatal", "cost", "coverage", "dual", "lp_guided")
                    if name != ll_solver
                ]
                self._solver_panel += [
                    make_heuristic(name)
                    for name in others[: mode.config.panel_size - 1]
                ]

        # One budget: each UL evaluation *is* one LL solve, so the ledger
        # charges both meters per evaluation and the historical
        # ``ul == ll`` reporting is preserved.
        self._engine_init(
            self.config.fitness_evaluations, self.config.fitness_evaluations
        )
        self.ll_effort = 0  # greedy steps or B&B nodes, for reporting
        self.archive = Archive(self.config.archive_size, minimize=False)
        self.population: list[Individual] = []

    @property
    def name(self) -> str:
        return f"NESTED[{self.ll_solver}]"

    @property
    def ul_used(self) -> int:
        return self.ledger.upper.used

    @property
    def budget_left(self) -> int:
        return self.ledger.upper.left

    def _evaluate(self, ind: Individual) -> bool:
        if self.ledger.upper.exhausted:
            return False
        prices = self.instance.validate_prices(ind.genome)
        if self.ll_solver == "exact":
            ll = self.instance.lower_level(prices)
            sol = solve_exact(
                ll, method="branch_and_bound", max_nodes=self.exact_node_budget
            )
            relax = self.evaluator.relaxation(prices)
            gap = relax.percent_gap(sol.cost) if sol.feasible else np.inf
            revenue = self.instance.revenue(prices, sol.selected)
            selection = sol.selected
            lower_cost = sol.cost
            lower_bound = relax.lower_bound
            self.ll_effort += sol.meta["stats"].nodes
        else:
            out = self.evaluator.evaluate_heuristic(prices, self._score_fn)
            gap, revenue = out.gap, out.revenue
            selection, lower_cost = out.selection, out.ll_cost
            lower_bound = out.lower_bound
            self.ll_effort += 1
        self.ledger.charge(upper=1, lower=1)
        ind.fitness = revenue if np.isfinite(gap) else -np.inf
        ind.aux = {
            "gap": gap,
            "selection": selection,
            "ll_cost": lower_cost,
            "lower_bound": lower_bound,
        }
        self.archive.add(prices.copy(), ind.fitness, aux=dict(ind.aux))
        return True

    def _evaluate_population(self, inds: list[Individual]) -> None:
        """Batch-evaluate a population through the pipeline (heuristic
        solvers only; ``"exact"`` keeps the serial path).  Budget
        truncation and archive order match per-individual evaluation;
        individuals beyond the budget get ``-inf`` fitness."""
        if self.ll_solver == "exact":
            for ind in inds:
                if not self._evaluate(ind):
                    ind.fitness = -np.inf
            return
        panel = self._solver_panel
        take = self.ledger.upper.take(len(inds))
        requests = [
            (ind.genome, solver) for ind in inds[:take] for solver in panel
        ]
        outcomes = self.pipeline.evaluate_heuristics(requests)
        for i, ind in enumerate(inds[:take]):
            chunk = outcomes[i * len(panel): (i + 1) * len(panel)]
            self.ll_effort += len(chunk)
            # One UL evaluation is one follower decision regardless of
            # ensemble width, so the historical ul == ll accounting holds.
            self.ledger.charge(upper=1, lower=1)
            payoffs = [
                out.revenue if np.isfinite(out.gap) else -np.inf for out in chunk
            ]
            ind.fitness = self.eval_mode.aggregate(payoffs)
            rep = chunk[self.eval_mode.representative_index(payoffs)]
            ind.aux = {
                "gap": rep.gap,
                "selection": rep.selection,
                "ll_cost": rep.ll_cost,
                "lower_bound": rep.lower_bound,
            }
            self.archive.add(rep.prices.copy(), ind.fitness, aux=dict(ind.aux))
        for ind in inds[take:]:
            ind.fitness = -np.inf
        evaluated = [ind for ind in inds[:take] if np.isfinite(ind.fitness)]
        if evaluated and not self.eval_mode.is_current:
            best = max(evaluated, key=lambda ind: ind.fitness)
            self.eval_mode.record_upper(
                best.genome.copy(), best.fitness, self.generation
            )

    def generation_metrics(self) -> dict[str, float]:
        fits = [i.fitness for i in self.population if np.isfinite(i.fitness)]
        gaps = [
            i.aux.get("gap", np.nan)
            for i in self.population
            if np.isfinite(i.aux.get("gap", np.nan))
        ]
        return {
            "best_fitness": max(fits) if fits else np.nan,
            "best_gap": min(gaps) if gaps else np.nan,
            "mean_gap": float(np.mean(gaps)) if gaps else np.nan,
        }

    def initialize(self) -> None:
        self.population = random_real_population(
            self.bounds, self.config.population_size, self.rng
        )
        self._evaluate_population(self.population)
        self.record_point()

    def step(self) -> bool:
        if self.ledger.upper.exhausted:
            return False
        cfg = self.config
        fits = [i.fitness for i in self.population]
        mates = binary_tournament(self.population, fits, cfg.population_size, self.rng)
        offspring: list[Individual] = []
        for i in range(0, len(mates) - 1, 2):
            g1, g2 = mates[i].genome, mates[i + 1].genome
            if self.rng.random() < cfg.crossover_probability:
                g1, g2 = sbx_crossover(g1, g2, self.bounds, self.rng, eta=cfg.sbx_eta)
            offspring.append(Individual(genome=g1.copy()))
            offspring.append(Individual(genome=g2.copy()))
        if len(mates) % 2:
            offspring.append(Individual(genome=mates[-1].genome.copy()))
        for ind in offspring:
            ind.genome = polynomial_mutation(
                ind.genome, self.bounds, self.rng,
                eta=cfg.polynomial_eta,
                per_gene_probability=cfg.mutation_probability,
            )
        self._evaluate_population(offspring)
        best = self.archive.best()
        elite = Individual(genome=best.item.copy(), fitness=best.score, aux=dict(best.aux))
        self.population = offspring[: cfg.population_size - 1] + [elite]
        self.record_point()
        return True

    def extract_result(self, seed_label: int, wall_time: float) -> RunResult:
        best = self.archive.best()
        gaps = [
            e.aux.get("gap", np.inf)
            for e in self.archive.entries()
            if np.isfinite(e.aux.get("gap", np.inf))
        ]
        return RunResult(
            algorithm=self.name,
            instance_name=self.instance.name,
            seed=seed_label,
            best_gap=min(gaps) if gaps else np.inf,
            best_upper=best.score,
            best_solution=solution_from_entry(best, self.instance.n_bundles),
            history=self.history,
            ul_evaluations_used=self.ul_used,
            ll_evaluations_used=self.ul_used,
            wall_time=wall_time,
            extras={
                "ll_effort": self.ll_effort,
                "ll_solver": self.ll_solver,
                "pipeline": self.pipeline.stats,
                "eval_mode": self.eval_mode.mode,
            },
        )

    # -- checkpointing -------------------------------------------------------

    def _state_payload(self) -> dict:
        return {
            "population": list(self.population),
            "archive": self.archive.state_dict(),
            "ll_effort": self.ll_effort,
            "eval_mode": self.eval_mode.state_dict(),
        }

    def _load_payload(self, payload: dict) -> None:
        self.population = list(payload["population"])
        self.archive.load_state_dict(payload["archive"])
        self.ll_effort = int(payload["ll_effort"])
        mode_state = payload.get("eval_mode")  # absent in pre-mode checkpoints
        if mode_state is not None:
            self.eval_mode.load_state_dict(mode_state)


def run_nested(
    instance: BcpopInstance,
    config: UpperLevelConfig | None = None,
    seed: int = 0,
    ll_solver: str = "chvatal",
    lp_backend: str = "scipy",
    executor: Executor | None = None,
    observers=(),
    resume_state: dict | None = None,
    eval_mode: "EvalModeConfig | None" = None,
) -> RunResult:
    """Convenience wrapper: one seeded, engine-driven nested run."""
    algorithm = NestedSequential(
        instance, config=config, rng=np.random.default_rng(seed),
        ll_solver=ll_solver, lp_backend=lp_backend, executor=executor,
        eval_mode=eval_mode,
    )
    return EngineLoop(algorithm, observers=observers, resume_state=resume_state).run(
        seed_label=seed
    )
