"""Bounded elite archives.

Both algorithms keep size-100 archives at each level (Table II).  An
archive holds the best-``key`` unique entries seen so far; uniqueness is
decided by a caller-provided identity function so price vectors (quantized
bytes) and GP trees (structural hash) can both be deduplicated.

Ordering is a *canonical total order*: entries compare by score first and
by a canonical rendering of their identity key second, so ranking —
``best()``, ``entries()``, ``top()`` and bounded-size eviction — never
depends on dict insertion order.  The archive's content is therefore a
pure function of the *set* of offered (item, score) pairs: offering the
same members in any order yields the same archive
(tests/test_eval_modes.py property-tests this invariant).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

import numpy as np

__all__ = ["ArchiveEntry", "Archive", "identity_token"]


@dataclass
class ArchiveEntry:
    """One archived individual with its score and side data."""

    item: Any
    score: float
    aux: dict = field(default_factory=dict)


def _default_identity(item: Any) -> Any:
    if isinstance(item, np.ndarray):
        if item.dtype == bool:
            return item.tobytes()
        return np.round(item.astype(np.float64), 9).tobytes()
    return item


def identity_token(key: Any) -> str:
    """Canonical string rendering of a dedup key, used as the score
    tie-break in the archive's total order.  Prefixed with the type name
    so keys of different types never compare equal and the combined
    (score, token) order is total for any mix of key types."""
    if isinstance(key, bytes):
        return f"bytes:{key.hex()}"
    if isinstance(key, str):
        return f"str:{key}"
    if isinstance(key, (int, np.integer)):
        return f"int:{int(key)}"
    if isinstance(key, float):
        return f"float:{key.hex()}"
    return f"{type(key).__name__}:{key!r}"


class Archive:
    """Keep the ``maxsize`` best unique entries.

    Parameters
    ----------
    maxsize:
        Capacity (Table II: 100).
    minimize:
        Score direction; ``False`` for revenue archives, ``True`` for gap
        archives.
    identity:
        Maps an item to a hashable dedup key; an incoming duplicate
        replaces the stored entry only if strictly better.
    """

    def __init__(
        self,
        maxsize: int,
        minimize: bool = True,
        identity: Callable[[Any], Any] | None = None,
    ) -> None:
        if maxsize < 1:
            raise ValueError(f"archive maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.minimize = minimize
        self.identity = identity or _default_identity
        self._entries: dict[Any, ArchiveEntry] = {}

    def _key(self, score: float) -> float:
        """Score component of the order: lower = better; NaN always worst."""
        if np.isnan(score):
            return np.inf
        return score if self.minimize else -score

    def _order(self, key: Any, entry: ArchiveEntry) -> tuple[float, str]:
        """Canonical total order: score first, identity token second —
        insertion-order independent by construction."""
        return (self._key(entry.score), identity_token(key))

    def _better(self, a: float, b: float) -> bool:
        """True iff score ``a`` beats score ``b``."""
        return self._key(a) < self._key(b)

    def add(self, item: Any, score: float, aux: dict | None = None) -> bool:
        """Offer an entry; returns True iff it was stored."""
        key = self.identity(item)
        existing = self._entries.get(key)
        entry = ArchiveEntry(item=item, score=float(score), aux=aux or {})
        if existing is not None:
            if self._better(entry.score, existing.score):
                self._entries[key] = entry
                return True
            return False
        self._entries[key] = entry
        if len(self._entries) > self.maxsize:
            worst_key = max(
                self._entries.items(), key=lambda kv: self._order(kv[0], kv[1])
            )[0]
            evicted = worst_key == key
            del self._entries[worst_key]
            return not evicted
        return True

    def best(self) -> ArchiveEntry:
        """The single best entry (raises on empty archive)."""
        if not self._entries:
            raise ValueError("archive is empty")
        return min(
            self._entries.items(), key=lambda kv: self._order(kv[0], kv[1])
        )[1]

    def best_score(self) -> float:
        return self.best().score

    def entries(self) -> list[ArchiveEntry]:
        """All entries, best first (canonical order)."""
        ordered = sorted(
            self._entries.items(), key=lambda kv: self._order(kv[0], kv[1])
        )
        return [entry for _, entry in ordered]

    def top(self, n: int) -> list[ArchiveEntry]:
        return self.entries()[:n]

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[ArchiveEntry]:
        return iter(self.entries())

    def __contains__(self, item: Any) -> bool:
        return self.identity(item) in self._entries

    # -- checkpoint support -------------------------------------------------

    def state_dict(self) -> dict:
        """Entries in canonical order.  Ranking, eviction and iteration
        are all insertion-order independent (see :meth:`_order`), so the
        canonical order is a complete serialization — resume needs no
        insertion-order bookkeeping."""
        return {
            "entries": [
                {"item": e.item, "score": e.score, "aux": e.aux}
                for e in self.entries()
            ]
        }

    def load_state_dict(self, state: dict) -> None:
        """Rebuild the archive from :meth:`state_dict` output, re-keying
        each entry through the configured identity function."""
        self._entries = {}
        for spec in state["entries"]:
            entry = ArchiveEntry(
                item=spec["item"], score=float(spec["score"]), aux=dict(spec["aux"])
            )
            self._entries[self.identity(entry.item)] = entry
