"""The unified co-evolution engine.

Carbon, Cobra, NestedSequential, SurrogateAssisted, TriLevelCarbon and
IslandCarbon all share one run lifecycle — ``initialize → step* → close
→ extract_result`` — driven by :class:`EngineLoop`.  The loop owns
wall-time, the step iteration, early stop and resume; the algorithms own
*what a step means*.  Cross-cutting capabilities (JSONL logging,
checkpointing, stagnation stop, convergence recording) attach as
observers on the :class:`~repro.core.events.EventBus` instead of being
re-implemented per algorithm.

Budget accounting, previously five sets of hand-rolled
``ul_used``/``ll_used`` counters, lives in one :class:`BudgetLedger`
with an upper and a lower :class:`BudgetMeter`.  A single ledger plus
the generation-event stream is what per-interaction accounting (Lehre,
2024) and adaptive resource allocation à la CR-BLEA (Xu et al., 2025)
need as substrate — neither is expressible against five disjoint loops.

The determinism contract extends to interrupted runs: an algorithm's
full evolutionary state (populations, archives, RNG bit-generator
state, ledger, history) round-trips through
:meth:`EngineAlgorithm.state_dict`, so a checkpointed run resumed by
:class:`EngineLoop` reproduces the uninterrupted run bit for bit
(tests/test_checkpoint_resume.py).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Protocol, Sequence, runtime_checkable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.config import EvalModeConfig
    from repro.core.evalmode import EvaluationMode

from repro.core.convergence import ConvergenceHistory
from repro.core.events import ConvergenceRecorder, EngineEvent, EventBus, Observer
from repro.core.results import RunResult

__all__ = [
    "BudgetMeter",
    "BudgetLedger",
    "CoevolutionAlgorithm",
    "EngineAlgorithm",
    "EngineLoop",
]


# ---------------------------------------------------------------------------
# budget ledger
# ---------------------------------------------------------------------------


@dataclass
class BudgetMeter:
    """One evaluation budget: a cap and a monotone usage counter."""

    budget: int
    used: int = 0

    @property
    def left(self) -> int:
        return self.budget - self.used

    @property
    def exhausted(self) -> bool:
        return self.left <= 0

    def charge(self, n: int = 1) -> None:
        """Consume ``n`` evaluations (negative charges are a bug)."""
        if n < 0:
            raise ValueError(f"cannot charge {n} evaluations")
        self.used += n

    def take(self, requested: int) -> int:
        """How much of ``requested`` the remaining budget can fund
        (truncation point for batch evaluation plans)."""
        return min(requested, max(self.left, 0))


class BudgetLedger:
    """Dual upper/lower evaluation accounting for one run.

    Replaces the per-algorithm ``ul_used``/``ll_used``/``*_budget_left``
    scatter.  Algorithms whose levels share a single budget (the nested
    and surrogate baselines: one lower-level solve per upper-level
    evaluation) charge both meters per evaluation, which keeps the
    reported ``ul``/``ll`` totals identical to the historical counters.
    """

    def __init__(self, upper_budget: int, lower_budget: int) -> None:
        self.upper = BudgetMeter(int(upper_budget))
        self.lower = BudgetMeter(int(lower_budget))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BudgetLedger(upper={self.upper.used}/{self.upper.budget}, "
            f"lower={self.lower.used}/{self.lower.budget})"
        )

    @property
    def exhausted(self) -> bool:
        """True when *both* levels are out of budget."""
        return self.upper.exhausted and self.lower.exhausted

    def charge(self, upper: int = 0, lower: int = 0) -> None:
        if upper:
            self.upper.charge(upper)
        if lower:
            self.lower.charge(lower)

    def state_dict(self) -> dict:
        return {
            "upper": {"budget": self.upper.budget, "used": self.upper.used},
            "lower": {"budget": self.lower.budget, "used": self.lower.used},
        }

    def load_state_dict(self, state: dict) -> None:
        upper, lower = state["upper"], state["lower"]
        self.upper = BudgetMeter(budget=int(upper["budget"]), used=int(upper["used"]))
        self.lower = BudgetMeter(budget=int(lower["budget"]), used=int(lower["used"]))


# ---------------------------------------------------------------------------
# the algorithm protocol
# ---------------------------------------------------------------------------


@runtime_checkable
class CoevolutionAlgorithm(Protocol):
    """What :class:`EngineLoop` needs from an algorithm.

    State attributes (``events``, ``history``, ``generation``, plus the
    problem ``instance``) are exposed so observers can read telemetry
    without per-algorithm adapters; ``state_dict``/``load_state_dict``
    must round-trip the complete evolutionary state for exact resume.
    """

    events: EventBus
    history: ConvergenceHistory
    generation: int
    instance: Any

    @property
    def name(self) -> str:
        """Algorithm label as reported in ``RunResult.algorithm``."""
        ...

    def budget_used(self) -> tuple[int, int]:
        """(upper, lower) evaluations consumed so far."""
        ...

    def initialize(self) -> None: ...

    def step(self) -> bool: ...

    def close(self) -> None: ...

    def extract_result(self, seed_label: int, wall_time: float) -> RunResult: ...

    def state_dict(self) -> dict: ...

    def load_state_dict(self, state: dict) -> None: ...


class EngineAlgorithm:
    """Shared concrete base for engine-driven algorithms.

    Subclasses call :meth:`_engine_init` from ``__init__`` and provide
    ``generation_metrics()`` (the three convergence metrics their old
    ``_record`` computed), ``_state_payload()``/``_load_payload()`` (the
    population/archive state around the common rng/ledger/history
    envelope), and ``extract_result``.
    """

    #: Overridden by subclasses that build an executor from their config
    #: (a shared, caller-provided executor is never closed here).
    _owns_executor = False

    #: Set by :meth:`_init_rng` when the execution config asks for the
    #: RNG-audit sanitizer; ``None`` otherwise.
    rng_audit = None

    def _init_rng(self, rng, execution=None, component: str = "algorithm"):
        """Resolve the run's random stream.

        ``None`` falls back to a *seeded* deterministic generator — an
        unseeded fallback would make only the runs nobody can reproduce
        (repro-lint R001).  When ``execution.rng_audit`` is set, the
        stream is wrapped in an :class:`repro.parallel.rng.RngAudit`
        counter so the determinism tests can assert draw-trace equality
        between serial and parallel runs (the dynamic complement of the
        static R001 pass).
        """
        if rng is None:
            rng = np.random.default_rng(0)
        if execution is not None and getattr(execution, "rng_audit", False):
            from repro.parallel.rng import RngAudit

            self.rng_audit = RngAudit()
            rng = self.rng_audit.wrap(
                rng, component, generation=lambda: self.generation
            )
        return rng

    def _engine_init(self, upper_budget: int, lower_budget: int) -> None:
        self.ledger = BudgetLedger(upper_budget, lower_budget)
        self.history = ConvergenceHistory()
        self.events = EventBus([ConvergenceRecorder(self.history)])
        self.generation = 0

    def _init_eval_mode(
        self, config: "EvalModeConfig | None" = None
    ) -> "EvaluationMode":
        """Attach a competitive evaluation mode (opponent pools) to this
        algorithm.  ``None`` means the default ``"current"`` mode, whose
        wired code paths are bit-identical to the pre-mode behaviour; see
        :mod:`repro.core.evalmode`.  Call after :meth:`_engine_init` so
        pool events reach the run's bus."""
        from repro.core.config import EvalModeConfig
        from repro.core.evalmode import EvaluationMode

        self.eval_mode = EvaluationMode(config or EvalModeConfig(), algorithm=self)
        return self.eval_mode

    # -- protocol surface ---------------------------------------------------

    @property
    def name(self) -> str:
        raise NotImplementedError

    def budget_used(self) -> tuple[int, int]:
        return self.ledger.upper.used, self.ledger.lower.used

    def initialize(self) -> None:
        raise NotImplementedError

    def step(self) -> bool:
        raise NotImplementedError

    def close(self) -> None:
        """Release the executor if this run built it from its config."""
        if self._owns_executor:
            self.executor.close()

    def extract_result(self, seed_label: int, wall_time: float) -> RunResult:
        raise NotImplementedError

    # -- convergence recording ---------------------------------------------

    def generation_metrics(self) -> dict[str, float]:
        """Current-population metrics: ``best_fitness``, ``best_gap``,
        ``mean_gap`` (the per-algorithm part of the old ``_record``)."""
        raise NotImplementedError

    def record_point(self) -> None:
        """Append one convergence point via the event bus (the shared
        part of the old ``_record`` bodies)."""
        ul_used, ll_used = self.budget_used()
        self.events.record(
            EngineEvent(
                algorithm=self,
                generation=self.generation,
                data={
                    "ul_evaluations": ul_used,
                    "ll_evaluations": ll_used,
                    **self.generation_metrics(),
                },
            )
        )

    # -- checkpoint envelope ------------------------------------------------

    def state_dict(self) -> dict:
        """Complete evolutionary state (see :mod:`repro.core.checkpoint`
        for the serialized form)."""
        return {
            "algorithm": self.name,
            "generation": self.generation,
            "rng": self.rng.bit_generator.state,
            "ledger": self.ledger.state_dict(),
            "history": self.history.state_dict(),
            "payload": self._state_payload(),
        }

    def load_state_dict(self, state: dict) -> None:
        if state["algorithm"] != self.name:
            raise ValueError(
                f"checkpoint is for {state['algorithm']!r}, not {self.name!r}"
            )
        self.generation = int(state["generation"])
        self.rng.bit_generator.state = state["rng"]
        self.ledger.load_state_dict(state["ledger"])
        self.history.load_state_dict(state["history"])
        self._load_payload(state["payload"])

    def _state_payload(self) -> dict:
        raise NotImplementedError

    def _load_payload(self, payload: dict) -> None:
        raise NotImplementedError

    # -- convenience --------------------------------------------------------

    def run(
        self,
        seed_label: int = 0,
        observers: Sequence[Observer] = (),
        resume_state: dict | None = None,
        max_generations: int | None = None,
    ) -> RunResult:
        """Run to completion under an :class:`EngineLoop`."""
        return EngineLoop(
            self,
            observers=observers,
            resume_state=resume_state,
            max_generations=max_generations,
        ).run(seed_label=seed_label)


# ---------------------------------------------------------------------------
# the driver loop
# ---------------------------------------------------------------------------


class EngineLoop:
    """One instrumented run of a :class:`CoevolutionAlgorithm`.

    Parameters
    ----------
    algorithm:
        The algorithm to drive.
    observers:
        Extra observers subscribed to the algorithm's bus for this run
        (e.g. :class:`~repro.core.events.JsonlRunLogger`,
        :class:`~repro.core.checkpoint.Checkpointer`,
        :class:`~repro.core.events.StagnationEarlyStop`).
    resume_state:
        A ``state_dict`` (typically ``load_checkpoint(path)["state"]``);
        when given, ``initialize()`` is skipped and the run continues
        from the restored generation, bit-identically to a run that was
        never interrupted.
    max_generations:
        Stop (pause) after this many steps *in this session* — the
        programmatic interrupt used by the resume tests; ``None`` runs
        to budget exhaustion.
    """

    def __init__(
        self,
        algorithm: CoevolutionAlgorithm,
        observers: Sequence[Observer] = (),
        resume_state: dict | None = None,
        max_generations: int | None = None,
    ) -> None:
        self.algorithm = algorithm
        self.observers = tuple(observers)
        self.resume_state = resume_state
        self.max_generations = max_generations
        self.stop_requested = False
        self.stop_reason: str | None = None

    def request_stop(self, reason: str = "") -> None:
        """Ask the loop to stop after the current generation (how
        observers implement early stopping)."""
        self.stop_requested = True
        self.stop_reason = reason or None

    def _event(self, seed_label: int, start: float, **kw) -> EngineEvent:
        return EngineEvent(
            algorithm=self.algorithm,
            generation=self.algorithm.generation,
            seed_label=seed_label,
            loop=self,
            elapsed=time.perf_counter() - start,  # repro-lint: disable=R002  # wall-time telemetry only, never feeds evolutionary state
            **kw,
        )

    def run(self, seed_label: int = 0) -> RunResult:
        algo = self.algorithm
        bus = algo.events
        for obs in self.observers:
            bus.subscribe(obs)
        start = time.perf_counter()  # repro-lint: disable=R002  # wall-time telemetry only, never feeds evolutionary state
        resumed = self.resume_state is not None
        status = "completed"
        steps_this_session = 0
        try:
            try:
                try:
                    if resumed:
                        algo.load_state_dict(self.resume_state)
                    else:
                        algo.initialize()
                    bus.init(self._event(seed_label, start))
                    while not self.stop_requested:
                        if (
                            self.max_generations is not None
                            and steps_this_session >= self.max_generations
                        ):
                            status = "paused"
                            break
                        if not algo.step():
                            break
                        algo.generation += 1
                        steps_this_session += 1
                        bus.generation_end(self._event(seed_label, start))
                    if self.stop_requested:
                        status = "stopped"
                finally:
                    algo.close()
                result = algo.extract_result(
                    seed_label=seed_label,
                    wall_time=time.perf_counter() - start,  # repro-lint: disable=R002  # wall-time telemetry only, never feeds evolutionary state
                )
                result.extras["engine"] = {
                    "generations": algo.generation,
                    "status": status,
                    "stop_reason": self.stop_reason,
                    "resumed": resumed,
                }
                audit = getattr(algo, "rng_audit", None)
                if audit is not None:
                    result.extras["rng_audit"] = audit.summary()
            except BaseException as exc:
                # A raise mid-generation leaves the algorithm half-stepped;
                # observers still get a consistent run end (no result,
                # aborted flag set) so loggers can record the abort and the
                # checkpointer can *refrain* from saving the broken state —
                # the last periodic checkpoint stays the resume point.
                bus.run_end(
                    self._event(
                        seed_label,
                        start,
                        data={
                            "aborted": True,
                            "error": f"{type(exc).__name__}: {exc}",
                        },
                    )
                )
                raise
            bus.run_end(self._event(seed_label, start, result=result))
            return result
        finally:
            for obs in self.observers:
                bus.unsubscribe(obs)
