"""Checkpoint/resume with exact state round-trip.

A checkpoint is a single JSON document holding an algorithm's complete
evolutionary state: populations and archives (GP trees through the
canonical :meth:`repro.gp.tree.SyntaxTree.serialize` form, numpy arrays
as raw little-endian bytes in base64), the NumPy bit-generator state,
the budget ledger, and the convergence history.  Every value
round-trips bit-exactly — Python's JSON float encoding uses
``float.__repr__``, which is shortest-exact for float64, and arrays
travel as bytes — so a resumed run replays *exactly* the run that was
interrupted (tests/test_checkpoint_resume.py), extending the
serial/parallel determinism contract of PR 1 to interrupted runs.

LP-relaxation caches and evaluation memos are deliberately *not*
checkpointed: they are pure caches of deterministic functions, so their
absence after resume changes wall-time only, never results.
"""

from __future__ import annotations

import base64
import json
import os
import tempfile
from typing import Any

import numpy as np

from repro.core.events import EngineEvent, Observer
from repro.ga.population import Individual
from repro.gp.tree import SyntaxTree

__all__ = [
    "pack",
    "unpack",
    "save_checkpoint",
    "load_checkpoint",
    "Checkpointer",
]

CHECKPOINT_FORMAT = "repro-checkpoint"
CHECKPOINT_VERSION = 1

_ND = "__ndarray__"
_TREE = "__tree__"
_IND = "__individual__"


def pack(obj: Any) -> Any:
    """Map run state onto JSON-encodable values, exactly.

    Handles ``None``/bool/int/str, floats (including NaN/inf — emitted
    as the JSON extensions Python reads back), numpy scalars, numpy
    arrays, :class:`SyntaxTree`, :class:`Individual`, and nested
    dicts/lists/tuples thereof (tuples come back as lists).
    """
    if obj is None or isinstance(obj, (bool, int, str, float)):
        # Covers numpy float scalars too (np.floating subclasses float);
        # json renders floats with float.__repr__, which round-trips.
        if isinstance(obj, float) and not isinstance(obj, np.floating):
            return obj
        if isinstance(obj, np.floating):
            return float(obj)
        return obj
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.bool_):
        return bool(obj)
    if isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        return {
            _ND: {
                "dtype": arr.dtype.str,  # includes byte order, e.g. "<f8"
                "shape": list(arr.shape),
                "data": base64.b64encode(arr.tobytes()).decode("ascii"),
            }
        }
    if isinstance(obj, SyntaxTree):
        return {_TREE: obj.serialize()}
    if isinstance(obj, Individual):
        return {
            _IND: {
                "genome": pack(obj.genome),
                "fitness": pack(obj.fitness),
                "aux": pack(obj.aux),
            }
        }
    if isinstance(obj, dict):
        for key in obj:
            if not isinstance(key, str):
                raise TypeError(f"checkpoint dict keys must be str, got {key!r}")
        return {key: pack(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [pack(value) for value in obj]
    raise TypeError(f"cannot checkpoint object of type {type(obj).__name__}")


def unpack(obj: Any) -> Any:
    """Inverse of :func:`pack`."""
    if isinstance(obj, dict):
        if _ND in obj and len(obj) == 1:
            spec = obj[_ND]
            raw = base64.b64decode(spec["data"])
            arr = np.frombuffer(raw, dtype=np.dtype(spec["dtype"]))
            return arr.reshape(spec["shape"]).copy()  # copy: writable
        if _TREE in obj and len(obj) == 1:
            return SyntaxTree.deserialize(obj[_TREE])
        if _IND in obj and len(obj) == 1:
            spec = obj[_IND]
            return Individual(
                genome=unpack(spec["genome"]),
                fitness=unpack(spec["fitness"]),
                aux=unpack(spec["aux"]),
            )
        return {key: unpack(value) for key, value in obj.items()}
    if isinstance(obj, list):
        return [unpack(value) for value in obj]
    return obj


def save_checkpoint(path, algorithm, generation: int | None = None) -> None:
    """Atomically write ``algorithm.state_dict()`` to ``path``.

    The write goes through a temporary file in the same directory plus
    :func:`os.replace`, so an interrupt mid-save never corrupts the
    previous checkpoint.
    """
    state = algorithm.state_dict()
    document = {
        "format": CHECKPOINT_FORMAT,
        "version": CHECKPOINT_VERSION,
        "algorithm": state.get("algorithm", algorithm.name),
        "generation": int(
            generation if generation is not None else getattr(algorithm, "generation", 0)
        ),
        "state": pack(state),
    }
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    fd, tmp_path = tempfile.mkstemp(dir=directory, prefix=".ckpt-", suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(document, fh)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def load_checkpoint(path) -> dict:
    """Read a checkpoint; returns the document with ``"state"`` unpacked
    (ready for ``load_state_dict`` / ``EngineLoop(resume_state=...)``)."""
    with open(path) as fh:
        document = json.load(fh)
    if document.get("format") != CHECKPOINT_FORMAT:
        raise ValueError(f"{path} is not a {CHECKPOINT_FORMAT} file")
    if document.get("version") != CHECKPOINT_VERSION:
        raise ValueError(
            f"unsupported checkpoint version {document.get('version')!r} in {path}"
        )
    document["state"] = unpack(document["state"])
    return document


class Checkpointer(Observer):
    """Periodic checkpointing observer.

    Saves after every ``every``-th generation and once more at run end
    (so resuming a finished run re-extracts immediately instead of
    recomputing).  Attach per run via
    :class:`~repro.core.engine.EngineLoop`.
    """

    def __init__(self, path, every: int = 1) -> None:
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.path = path
        self.every = every
        self.saves = 0

    def _save(self, event: EngineEvent) -> None:
        save_checkpoint(self.path, event.algorithm, generation=event.generation)
        self.saves += 1

    def on_generation_end(self, event: EngineEvent) -> None:
        if event.generation % self.every == 0:
            self._save(event)

    def on_run_end(self, event: EngineEvent) -> None:
        self._save(event)
