"""Checkpoint/resume with exact state round-trip.

A checkpoint is a single JSON document holding an algorithm's complete
evolutionary state: populations and archives (GP trees through the
canonical :meth:`repro.gp.tree.SyntaxTree.serialize` form, numpy arrays
as raw little-endian bytes in base64), the NumPy bit-generator state,
the budget ledger, and the convergence history.  Every value
round-trips bit-exactly — Python's JSON float encoding uses
``float.__repr__``, which is shortest-exact for float64, and arrays
travel as bytes — so a resumed run replays *exactly* the run that was
interrupted (tests/test_checkpoint_resume.py), extending the
serial/parallel determinism contract of PR 1 to interrupted runs.

LP-relaxation caches and evaluation memos are deliberately *not*
checkpointed: they are pure caches of deterministic functions, so their
absence after resume changes wall-time only, never results.

Self-healing (DESIGN.md §11): every checkpoint embeds a SHA-256
content checksum, ``save_checkpoint(..., keep=N)`` rotates the last
``N`` checkpoints logrotate-style (``path`` newest, ``path.1`` older,
…), and :func:`load_latest_checkpoint` walks that chain skipping
truncated/corrupt files — so a partially-written or bit-flipped newest
checkpoint degrades the resume point by one save interval instead of
killing the run.  Resume from any valid checkpoint in the chain stays
bit-identical to an uninterrupted run.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import tempfile
from typing import Any

import numpy as np

from repro.core.events import EngineEvent, Observer
from repro.ga.population import Individual
from repro.gp.tree import SyntaxTree

__all__ = [
    "pack",
    "unpack",
    "save_checkpoint",
    "load_checkpoint",
    "load_latest_checkpoint",
    "checkpoint_chain",
    "CheckpointCorruptError",
    "Checkpointer",
]

CHECKPOINT_FORMAT = "repro-checkpoint"
CHECKPOINT_VERSION = 1

_ND = "__ndarray__"
_TREE = "__tree__"
_IND = "__individual__"


class CheckpointCorruptError(ValueError):
    """A checkpoint file that is damaged (truncated JSON or checksum
    mismatch) rather than merely foreign — the distinction
    :func:`load_latest_checkpoint` uses to decide what to skip."""


def pack(obj: Any) -> Any:
    """Map run state onto JSON-encodable values, exactly.

    Handles ``None``/bool/int/str, floats (including NaN/inf — emitted
    as the JSON extensions Python reads back), numpy scalars, numpy
    arrays, :class:`SyntaxTree`, :class:`Individual`, and nested
    dicts/lists/tuples thereof (tuples come back as lists).
    """
    if obj is None or isinstance(obj, (bool, int, str, float)):
        # Covers numpy float scalars too (np.floating subclasses float);
        # json renders floats with float.__repr__, which round-trips.
        if isinstance(obj, float) and not isinstance(obj, np.floating):
            return obj
        if isinstance(obj, np.floating):
            return float(obj)
        return obj
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.bool_):
        return bool(obj)
    if isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        return {
            _ND: {
                "dtype": arr.dtype.str,  # includes byte order, e.g. "<f8"
                "shape": list(arr.shape),
                "data": base64.b64encode(arr.tobytes()).decode("ascii"),
            }
        }
    if isinstance(obj, SyntaxTree):
        return {_TREE: obj.serialize()}
    if isinstance(obj, Individual):
        return {
            _IND: {
                "genome": pack(obj.genome),
                "fitness": pack(obj.fitness),
                "aux": pack(obj.aux),
            }
        }
    if isinstance(obj, dict):
        for key in obj:
            if not isinstance(key, str):
                raise TypeError(f"checkpoint dict keys must be str, got {key!r}")
        # repro-lint: disable-next-line=R003  # codec preserves the state dict's own (deterministic) insertion order; the dump is canonicalized by sort_keys
        return {key: pack(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [pack(value) for value in obj]
    raise TypeError(f"cannot checkpoint object of type {type(obj).__name__}")


def unpack(obj: Any) -> Any:
    """Inverse of :func:`pack`."""
    if isinstance(obj, dict):
        if _ND in obj and len(obj) == 1:
            spec = obj[_ND]
            raw = base64.b64decode(spec["data"])
            arr = np.frombuffer(raw, dtype=np.dtype(spec["dtype"]))
            return arr.reshape(spec["shape"]).copy()  # copy: writable
        if _TREE in obj and len(obj) == 1:
            return SyntaxTree.deserialize(obj[_TREE])
        if _IND in obj and len(obj) == 1:
            spec = obj[_IND]
            return Individual(
                genome=unpack(spec["genome"]),
                fitness=unpack(spec["fitness"]),
                aux=unpack(spec["aux"]),
            )
        # repro-lint: disable-next-line=R003  # inverse codec: order mirrors the loaded document, consumed key-wise
        return {key: unpack(value) for key, value in obj.items()}
    if isinstance(obj, list):
        return [unpack(value) for value in obj]
    return obj


def _content_checksum(document: dict) -> str:
    """SHA-256 over the canonical dump of everything but the checksum.

    Floats survive a JSON round trip exactly (``float.__repr__`` is
    shortest-exact), so re-dumping a loaded document reproduces the
    bytes that were hashed at save time — verification needs no second
    copy of the payload.
    """
    # repro-lint: disable-next-line=R003  # order-free: the very next line canonicalizes with sort_keys
    content = {key: value for key, value in document.items() if key != "checksum"}
    canonical = json.dumps(content, sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _rotate(path: str, keep: int) -> None:
    """Shift the retention chain down one slot (``path`` → ``path.1`` →
    … → ``path.{keep-1}``; the oldest falls off)."""
    for i in range(keep - 1, 0, -1):
        older = path if i == 1 else f"{path}.{i - 1}"
        if os.path.exists(older):
            os.replace(older, f"{path}.{i}")


def save_checkpoint(path, algorithm, generation: int | None = None, keep: int = 1) -> None:
    """Atomically write ``algorithm.state_dict()`` to ``path``.

    The write goes through a temporary file in the same directory plus
    :func:`os.replace`, so an interrupt mid-save never corrupts the
    previous checkpoint.  ``keep > 1`` additionally rotates earlier
    checkpoints to ``path.1`` … ``path.{keep-1}`` (newest first) so a
    corrupted newest file still leaves valid resume points behind it.
    """
    if keep < 1:
        raise ValueError(f"keep must be >= 1, got {keep}")
    state = algorithm.state_dict()
    document = {
        "format": CHECKPOINT_FORMAT,
        "version": CHECKPOINT_VERSION,
        "algorithm": state.get("algorithm", algorithm.name),
        "generation": int(
            generation if generation is not None else getattr(algorithm, "generation", 0)
        ),
        "state": pack(state),
    }
    document["checksum"] = _content_checksum(document)
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    fd, tmp_path = tempfile.mkstemp(dir=directory, prefix=".ckpt-", suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(document, fh, sort_keys=True)
        if keep > 1:
            _rotate(path, keep)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def load_checkpoint(path) -> dict:
    """Read a checkpoint; returns the document with ``"state"`` unpacked
    (ready for ``load_state_dict`` / ``EngineLoop(resume_state=...)``).

    Damage — unparseable/truncated JSON or a checksum mismatch — raises
    :class:`CheckpointCorruptError`; a structurally intact file of the
    wrong format or version raises plain ``ValueError`` (it is a
    foreign file, not a damaged checkpoint).
    """
    with open(path) as fh:
        try:
            document = json.load(fh)
        except ValueError as exc:
            raise CheckpointCorruptError(
                f"{path} is truncated or not valid JSON: {exc}"
            ) from exc
    if not isinstance(document, dict):
        raise CheckpointCorruptError(f"{path} does not hold a checkpoint object")
    stored = document.get("checksum")
    if stored is not None and stored != _content_checksum(document):
        raise CheckpointCorruptError(
            f"{path} failed its content checksum (file damaged on disk)"
        )
    if document.get("format") != CHECKPOINT_FORMAT:
        raise ValueError(f"{path} is not a {CHECKPOINT_FORMAT} file")
    if document.get("version") != CHECKPOINT_VERSION:
        raise ValueError(
            f"unsupported checkpoint version {document.get('version')!r} in {path}"
        )
    document["state"] = unpack(document["state"])
    return document


def checkpoint_chain(path) -> list[str]:
    """Existing files of a retention chain, newest first (``path``,
    ``path.1``, ``path.2``, …)."""
    path = os.fspath(path)
    chain = [path] if os.path.exists(path) else []
    i = 1
    while os.path.exists(f"{path}.{i}"):
        chain.append(f"{path}.{i}")
        i += 1
    return chain


def load_latest_checkpoint(path) -> dict | None:
    """The newest *valid* checkpoint of a retention chain, or ``None``.

    Corrupt or truncated files are skipped (self-healing resume:
    a damaged newest checkpoint costs one save interval, not the run);
    foreign files (wrong format/version) still raise — silently skipping
    those would mask a misconfiguration.
    """
    for candidate in checkpoint_chain(path):
        try:
            return load_checkpoint(candidate)
        except (CheckpointCorruptError, OSError):
            continue
    return None


class Checkpointer(Observer):
    """Periodic checkpointing observer.

    Saves after every ``every``-th generation and once more at run end
    (so resuming a finished run re-extracts immediately instead of
    recomputing).  ``keep > 1`` retains that many rotated checkpoints
    (see :func:`save_checkpoint`).  Attach per run via
    :class:`~repro.core.engine.EngineLoop`.

    An *aborted* run end (the engine re-raising a mid-generation
    exception) is deliberately **not** saved: the algorithm's state is
    half-written at that point, and the last good periodic checkpoint
    is exactly what resume should use.
    """

    def __init__(self, path, every: int = 1, keep: int = 1) -> None:
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.path = path
        self.every = every
        self.keep = keep
        self.saves = 0

    def _save(self, event: EngineEvent) -> None:
        save_checkpoint(
            self.path, event.algorithm, generation=event.generation, keep=self.keep
        )
        self.saves += 1

    def on_generation_end(self, event: EngineEvent) -> None:
        if event.generation % self.every == 0:
            self._save(event)

    def on_run_end(self, event: EngineEvent) -> None:
        if event.data.get("aborted"):
            return
        self._save(event)
