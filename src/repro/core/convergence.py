"""Convergence histories (Figs. 4 and 5) and the see-saw index.

Each algorithm records, after every generation, the *current* population
state (not the running best — Fig. 5's oscillations only exist in current
values): the best upper-level fitness and the best %-gap present in the
population/current pairing, indexed by consumed evaluation budget.

:func:`resample_history` projects runs with different generation lengths
onto a common evaluation grid so 30 runs can be averaged the way the
paper's "average convergence curves" are.  :func:`seesaw_index` quantifies
the paper's qualitative claim that COBRA's curves see-saw while CARBON's
are steady.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

import numpy as np

__all__ = ["ConvergencePoint", "ConvergenceHistory", "resample_history", "seesaw_index"]


@dataclass(frozen=True)
class ConvergencePoint:
    """State after one generation."""

    ul_evaluations: int
    ll_evaluations: int
    best_fitness: float        # best UL objective in the current population
    best_gap: float            # best %-gap in the current population/pairing
    mean_gap: float            # population mean gap (diagnostics)
    generation: int


@dataclass
class ConvergenceHistory:
    """Ordered per-generation records for one run."""

    points: list[ConvergencePoint] = field(default_factory=list)

    def record(
        self,
        ul_evaluations: int,
        ll_evaluations: int,
        best_fitness: float,
        best_gap: float,
        mean_gap: float,
    ) -> None:
        self.points.append(
            ConvergencePoint(
                ul_evaluations=int(ul_evaluations),
                ll_evaluations=int(ll_evaluations),
                best_fitness=float(best_fitness),
                best_gap=float(best_gap),
                mean_gap=float(mean_gap),
                generation=len(self.points),
            )
        )

    def __len__(self) -> int:
        return len(self.points)

    def state_dict(self) -> dict:
        """Checkpoint form: one plain dict per point."""
        return {"points": [asdict(p) for p in self.points]}

    def load_state_dict(self, state: dict) -> None:
        self.points = [ConvergencePoint(**p) for p in state["points"]]

    def series(self, what: str) -> tuple[np.ndarray, np.ndarray]:
        """(total evaluations, values) for ``what`` in
        {"fitness", "gap", "mean_gap"}."""
        if not self.points:
            raise ValueError("empty history")
        evals = np.array(
            [p.ul_evaluations + p.ll_evaluations for p in self.points], dtype=np.float64
        )
        if what == "fitness":
            vals = np.array([p.best_fitness for p in self.points])
        elif what == "gap":
            vals = np.array([p.best_gap for p in self.points])
        elif what == "mean_gap":
            vals = np.array([p.mean_gap for p in self.points])
        else:
            raise ValueError(f"unknown series {what!r}")
        return evals, vals


def resample_history(
    histories: list[ConvergenceHistory],
    what: str,
    n_points: int = 50,
) -> tuple[np.ndarray, np.ndarray]:
    """Average several runs onto a common evaluation grid.

    Returns ``(grid, mean_values)``; each run is step-interpolated (value
    holds until the next generation) before averaging, so runs with
    different generation counts contribute fairly.
    """
    if not histories:
        raise ValueError("no histories to resample")
    series = [h.series(what) for h in histories]
    max_evals = min(s[0][-1] for s in series)
    grid = np.linspace(0.0, float(max_evals), n_points)
    resampled = np.empty((len(series), n_points))
    for i, (evals, vals) in enumerate(series):
        idx = np.searchsorted(evals, grid, side="right") - 1
        idx = np.clip(idx, 0, len(vals) - 1)
        resampled[i] = vals[idx]
    finite = np.isfinite(resampled)
    with np.errstate(invalid="ignore"):
        mean = np.where(
            finite.any(axis=0),
            np.nanmean(np.where(finite, resampled, np.nan), axis=0),
            np.nan,
        )
    return grid, mean


def seesaw_index(values: np.ndarray | list[float]) -> float:
    """Oscillation measure in [0, 1]: wasted movement fraction.

    ``1 - |net change| / total variation``.  A monotone series scores 0
    (every step moves toward the end value); a pure zig-zag approaches 1.
    The paper's Fig. 4 vs Fig. 5 contrast ("steady increase" vs "see-saw
    shape") becomes the testable claim
    ``seesaw(COBRA) >> seesaw(CARBON)``.
    """
    v = np.asarray(values, dtype=np.float64)
    v = v[np.isfinite(v)]
    if v.size < 2:
        return 0.0
    deltas = np.diff(v)
    total_variation = np.abs(deltas).sum()
    if total_variation <= 1e-12:
        return 0.0
    net = abs(v[-1] - v[0])
    return float(1.0 - net / total_variation)
