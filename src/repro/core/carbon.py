"""CARBON: Competitive co-evolution of prices and hyper-heuristics (§IV).

Two populations play predator/prey:

* the **prey** — upper-level pricing vectors, evolved with the Table II GA
  operators (binary tournament, SBX 0.85, polynomial mutation 0.01),
* the **predators** — lower-level *solvers*: greedy scoring functions as
  GP syntax trees, evolved with the Table II GP operators (tournament,
  one-point crossover 0.85, uniform mutation 0.10, reproduction 0.05).

The coupling is competitive: every heuristic is scored by the mean
%-gap-to-LP-bound it achieves on lower-level instances *induced by the
current prey population* (so the predators chase the prey through instance
space), while every pricing vector is scored by the leader revenue under
the **champion** heuristic's predicted rational reaction (so the prey can
only earn revenue a near-rational follower would actually concede).  This
is how the nested structure is broken: the heuristic population is
meaningful for *any* upper-level decision, unlike a population of
lower-level decision vectors.

The run lifecycle (step loop, budget ledger, events, checkpoint/resume)
is the engine's (:mod:`repro.core.engine`); this module owns only what a
CARBON generation *means*.

Design choices the paper leaves open are flagged inline and ablated in the
benches (DESIGN.md §5): champion pairing, heuristic evaluation sample
size, per-gene mutation reading of Table II's 0.01.
"""

from __future__ import annotations

import numpy as np

from repro.bcpop.evaluate import EvaluationPipeline
from repro.bcpop.instance import BcpopInstance
from repro.core.archive import Archive, ArchiveEntry
from repro.core.config import CarbonConfig
from repro.core.engine import EngineAlgorithm, EngineLoop
from repro.core.evalmode import stable_identity
from repro.core.results import RunResult, solution_from_entry
from repro.ga.encoding import Bounds
from repro.ga.operators import polynomial_mutation, sbx_crossover
from repro.ga.population import Individual, random_real_population
from repro.ga.selection import binary_tournament
from repro.gp.generate import ramped_half_and_half
from repro.gp.operators import one_point_crossover, reproduce, uniform_mutation
from repro.gp.primitives import paper_primitive_set
from repro.gp.selection import tournament
from repro.gp.tree import SyntaxTree
from repro.parallel.executor import Executor

__all__ = ["Carbon", "run_carbon"]


class Carbon(EngineAlgorithm):
    """One CARBON run on one BCPOP instance.

    Parameters
    ----------
    instance:
        The bi-level pricing problem.
    config:
        Algorithm parameters (default: Table II paper values).
    rng:
        Random stream for the whole run.
    lp_backend:
        Forwarded to the lower-level evaluator.
    executor:
        Evaluation substrate for population fitness batches.  ``None``
        builds one from ``config.execution`` (and closes it when the
        engine finishes the run); a caller-provided executor is shared,
        never closed, and overrides the config.  All randomness stays in
        this process, so the executor choice never changes results (the
        determinism contract enforced by
        tests/test_parallel_determinism.py).
    """

    def __init__(
        self,
        instance: BcpopInstance,
        config: CarbonConfig | None = None,
        rng: np.random.Generator | None = None,
        lp_backend: str = "scipy",
        executor: Executor | None = None,
    ) -> None:
        self.instance = instance
        self.config = config or CarbonConfig.paper()
        execution = self.config.execution
        self.rng = self._init_rng(rng, execution, component="carbon")
        self.evaluator = instance.make_evaluator(
            lp_backend=lp_backend,
            memo_size=execution.memo_size,
            compile=execution.compile,
            lp_warm_start=execution.lp_warm_start,
        )
        if execution.profile_hot_path:
            self.evaluator.timers.enabled = True
        self._owns_executor = executor is None
        self.executor = executor if executor is not None else execution.make_executor()
        self.pipeline = EvaluationPipeline(
            self.evaluator,
            self.executor,
            batches_per_worker=execution.batches_per_worker,
        )
        self.pset = paper_primitive_set(
            erc_probability=self.config.gp_erc_probability
        )
        self.bounds = Bounds(*instance.price_bounds)

        self._engine_init(
            self.config.upper.fitness_evaluations, self.config.ll_fitness_evaluations
        )
        self._init_eval_mode(self.config.eval_mode)
        self.ul_archive = Archive(self.config.upper.archive_size, minimize=False)
        # Identity MUST be the content digest, not ``hash()``: SyntaxTree's
        # __hash__ hashes a tuple of node-name strings, which PYTHONHASHSEED
        # randomizes per interpreter — and the archive breaks score ties by
        # the stringified identity, so a hash()-keyed archive elects a
        # different tied champion per process (a real flake caught by the
        # convergence gate's contrast test).
        self.ll_archive = Archive(
            self.config.ll_archive_size, minimize=True, identity=stable_identity
        )
        self.ul_pop: list[Individual] = []
        self.ll_pop: list[Individual] = []
        self.champion: SyntaxTree | None = None

    # -- engine surface ----------------------------------------------------

    @property
    def name(self) -> str:
        return "CARBON"

    # -- budgets (ledger views kept for callers and benches) ---------------

    @property
    def ul_used(self) -> int:
        return self.ledger.upper.used

    @property
    def ll_used(self) -> int:
        return self.ledger.lower.used

    @property
    def ul_budget_left(self) -> int:
        return self.ledger.upper.left

    @property
    def ll_budget_left(self) -> int:
        return self.ledger.lower.left

    # -- evaluation --------------------------------------------------------

    def _price_sample(self, k: int) -> list[np.ndarray]:
        """Upper-level decisions the heuristics are graded against: drawn
        from the current prey population (the competitive coupling), plus
        archived adversaries under non-``current`` evaluation modes (so
        predators cannot forget how to answer past pricing regimes).

        Under ``current`` mode the archived panel is empty and no extra
        RNG is consumed, so the draw is bit-identical to the historical
        behaviour."""
        archived = self.eval_mode.upper_panel(k // 2, self.rng)
        k_live = k - len(archived)
        if not self.ul_pop:
            live = [self.bounds.sample(self.rng) for _ in range(k_live)]
        else:
            idx = self.rng.integers(len(self.ul_pop), size=k_live)
            live = [self.ul_pop[i].genome for i in idx]
        return live + archived

    def _evaluate_predators(
        self, inds: list[Individual], sample: list[np.ndarray]
    ) -> None:
        """Batch-evaluate heuristics (mean %-gap over the price sample).

        The whole population's (prices, tree) requests are flattened in
        individual-major order, truncated to the remaining LL budget
        exactly where serial evaluation would have stopped, and evaluated
        through the pipeline; results are folded back in the same order,
        so budget accounting and archive insertion order are identical to
        one-at-a-time evaluation.  Individuals the budget could not reach
        get ``inf`` fitness (budget ran dry mid-generation).
        """
        budget = self.ledger.lower.left
        plan: list[int] = []
        requests: list[tuple[np.ndarray, SyntaxTree]] = []
        for ind in inds:
            take = min(len(sample), max(budget, 0))
            plan.append(take)
            requests.extend((prices, ind.genome) for prices in sample[:take])
            budget -= take
        outcomes = self.pipeline.evaluate_heuristics(requests)
        pos = 0
        for ind, take in zip(inds, plan):
            chunk = outcomes[pos: pos + take]
            pos += take
            self.ledger.charge(lower=take)
            if not chunk:
                ind.fitness = np.inf  # budget ran dry before any evaluation
                continue
            gaps = [outcome.gap for outcome in chunk]
            finite = [g for g in gaps if np.isfinite(g)]
            ind.fitness = float(np.mean(finite)) if len(finite) == len(gaps) else np.inf
            ind.aux = {"gaps": gaps}
            self.ll_archive.add(ind.genome, ind.fitness, aux=dict(ind.aux))

    def _evaluate_prey(self, inds: list[Individual]) -> None:
        """Batch-evaluate pricing vectors: leader revenue against the
        evaluation mode's opponent panel — champion-only under
        ``current`` (the historical behaviour, bit-identical including
        budget accounting), champion + archived heuristics folded per
        :meth:`EvaluationMode.aggregate` otherwise.

        Budget is charged per (prices, heuristic) evaluation with the
        same individual-major plan-loop truncation as
        :meth:`_evaluate_predators`, so a dry budget stops exactly where
        serial evaluation would have; unreached individuals get
        ``-inf`` fitness."""
        assert self.champion is not None
        panel = self.eval_mode.lower_panel(self.champion, self.rng)
        budget = self.ledger.upper.left
        plan: list[int] = []
        requests: list[tuple[np.ndarray, SyntaxTree]] = []
        for ind in inds:
            take = min(len(panel), max(budget, 0))
            plan.append(take)
            requests.extend((ind.genome, solver) for solver in panel[:take])
            budget -= take
        outcomes = self.pipeline.evaluate_heuristics(requests)
        pos = 0
        for ind, take in zip(inds, plan):
            chunk = outcomes[pos: pos + take]
            pos += take
            self.ledger.charge(upper=take)
            if not chunk:
                ind.fitness = -np.inf  # budget ran dry before any evaluation
                continue
            payoffs = [
                outcome.revenue if outcome.feasible else -np.inf
                for outcome in chunk
            ]
            ind.fitness = self.eval_mode.aggregate(payoffs)
            rep = chunk[self.eval_mode.representative_index(payoffs)]
            ind.aux = {
                "gap": rep.gap,
                "selection": rep.selection,
                "ll_cost": rep.ll_cost,
                "lower_bound": rep.lower_bound,
            }
            self.ul_archive.add(ind.genome.copy(), ind.fitness, aux=dict(ind.aux))
        self._record_best_prey(inds)

    def _record_best_prey(self, inds: list[Individual]) -> None:
        """Offer this batch's best pricing vector to the upper opponent
        pool (no-op under ``current`` mode)."""
        if self.eval_mode.is_current or not inds:
            return
        fits = [
            ind.fitness if np.isfinite(ind.fitness) else -np.inf for ind in inds
        ]
        best = inds[int(np.argmax(fits))]
        if np.isfinite(best.fitness):
            self.eval_mode.record_upper(
                best.genome.copy(), best.fitness, self.generation
            )

    def _update_champion(self) -> None:
        if len(self.ll_archive):
            best = self.ll_archive.best()
            self.champion = best.item
            self.eval_mode.record_lower(best.item, best.score, self.generation)

    # -- generations -------------------------------------------------------

    def _gp_generation(self) -> None:
        """One generation of the predator (heuristic) population."""
        cfg = self.config
        parents = self.ll_pop
        fits = [ind.fitness for ind in parents]
        offspring: list[Individual] = []
        p_cx = cfg.ll_crossover_probability
        p_mut = cfg.ll_mutation_probability
        p_rep = cfg.ll_reproduction_probability
        while len(offspring) < cfg.ll_population_size:
            r = self.rng.random()
            if r < p_cx and len(parents) >= 2:
                a, b = tournament(
                    parents, fits, 2, self.rng,
                    k=cfg.ll_tournament_size, minimize=True,
                )
                c1, c2 = one_point_crossover(
                    a.genome, b.genome, self.rng,
                    max_depth=cfg.gp_max_depth, max_size=cfg.gp_max_size,
                )
                offspring.append(Individual(genome=c1))
                if len(offspring) < cfg.ll_population_size:
                    offspring.append(Individual(genome=c2))
            elif r < p_cx + p_mut:
                (a,) = tournament(
                    parents, fits, 1, self.rng,
                    k=cfg.ll_tournament_size, minimize=True,
                )
                child = uniform_mutation(
                    a.genome, self.pset, self.rng,
                    max_depth=cfg.gp_max_depth, max_size=cfg.gp_max_size,
                )
                offspring.append(Individual(genome=child))
            else:
                # Reproduction: copy, fitness carried over (no re-eval).
                (a,) = tournament(
                    parents, fits, 1, self.rng,
                    k=cfg.ll_tournament_size, minimize=True,
                )
                offspring.append(
                    Individual(genome=reproduce(a.genome), fitness=a.fitness, aux=dict(a.aux))
                )
        sample = self._price_sample(cfg.heuristic_eval_sample)
        self._evaluate_predators(
            [ind for ind in offspring if not ind.evaluated], sample
        )
        # Elitism: the champion survives unconditionally.
        best_entry = self.ll_archive.best()
        elite = Individual(genome=best_entry.item, fitness=best_entry.score)
        survivors = offspring[: cfg.ll_population_size - 1] + [elite]
        self.ll_pop = survivors
        self._update_champion()

    def _ga_generation(self) -> None:
        """One generation of the prey (pricing) population."""
        cfg = self.config.upper
        parents = self.ul_pop
        fits = [ind.fitness for ind in parents]
        mates = binary_tournament(parents, fits, cfg.population_size, self.rng)
        offspring: list[Individual] = []
        for i in range(0, len(mates) - 1, 2):
            g1, g2 = mates[i].genome, mates[i + 1].genome
            if self.rng.random() < cfg.crossover_probability:
                g1, g2 = sbx_crossover(g1, g2, self.bounds, self.rng, eta=cfg.sbx_eta)
            offspring.append(Individual(genome=g1.copy()))
            offspring.append(Individual(genome=g2.copy()))
        if len(mates) % 2:
            offspring.append(Individual(genome=mates[-1].genome.copy()))
        for ind in offspring:
            ind.genome = polynomial_mutation(
                ind.genome, self.bounds, self.rng,
                eta=cfg.polynomial_eta,
                per_gene_probability=cfg.mutation_probability,
            )
        if self.eval_mode.is_current:
            self._evaluate_prey(offspring)
            best_entry = self.ul_archive.best()
            elite = Individual(
                genome=best_entry.item.copy(), fitness=best_entry.score,
                aux=dict(best_entry.aux),
            )
        else:
            # Non-``current`` modes re-evaluate the reigning elite against
            # *today's* opponent panel alongside the offspring: an elite
            # that only looked good against a stale panel loses its seat
            # (the overestimation channel Nolfi's archive method closes) —
            # carrying the archived score forward would freeze gen-0
            # optimism into the population forever.
            best_entry = self.ul_archive.best()
            elite = Individual(genome=best_entry.item.copy())
            self._evaluate_prey(offspring + [elite])
        self.ul_pop = offspring[: cfg.population_size - 1] + [elite]

    def generation_metrics(self) -> dict[str, float]:
        ul_fits = [i.fitness for i in self.ul_pop if np.isfinite(i.fitness)]
        ll_fits = [i.fitness for i in self.ll_pop if np.isfinite(i.fitness)]
        return {
            "best_fitness": max(ul_fits) if ul_fits else np.nan,
            "best_gap": min(ll_fits) if ll_fits else np.nan,
            "mean_gap": float(np.mean(ll_fits)) if ll_fits else np.nan,
        }

    # -- island topology support -------------------------------------------

    def receive_migrants(
        self, champion_entry: ArchiveEntry, price_entry: ArchiveEntry
    ) -> None:
        """Accept a neighbor island's elites: archive them, refresh the
        champion, and displace the worst member of each population."""
        self.ll_archive.add(
            champion_entry.item, champion_entry.score, dict(champion_entry.aux)
        )
        self.ul_archive.add(
            price_entry.item.copy(), price_entry.score, dict(price_entry.aux)
        )
        self._update_champion()
        if self.ll_pop:
            worst = int(np.argmax([
                ind.fitness if np.isfinite(ind.fitness) else np.inf
                for ind in self.ll_pop
            ]))
            self.ll_pop[worst] = Individual(
                genome=champion_entry.item, fitness=champion_entry.score
            )
        if self.ul_pop:
            worst = int(np.argmin([
                ind.fitness if np.isfinite(ind.fitness) else -np.inf
                for ind in self.ul_pop
            ]))
            self.ul_pop[worst] = Individual(
                genome=price_entry.item.copy(),
                fitness=price_entry.score,
                aux=dict(price_entry.aux),
            )

    # -- lifecycle ----------------------------------------------------------

    def initialize(self) -> None:
        """Create and evaluate both initial populations."""
        cfg = self.config
        self.ul_pop = random_real_population(
            self.bounds, cfg.upper.population_size, self.rng
        )
        trees = ramped_half_and_half(
            self.pset, cfg.ll_population_size, self.rng,
            min_depth=cfg.gp_min_init_depth, max_depth=cfg.gp_max_init_depth,
        )
        self.ll_pop = [Individual(genome=t) for t in trees]
        sample = self._price_sample(cfg.heuristic_eval_sample)
        self._evaluate_predators(self.ll_pop, sample)
        self._update_champion()
        if self.champion is None:
            raise RuntimeError(
                "LL budget too small to evaluate a single heuristic"
            )
        self._evaluate_prey(self.ul_pop)
        self.record_point()

    def step(self) -> bool:
        """One co-evolutionary iteration; returns False when both budgets
        are exhausted."""
        if self.ledger.exhausted:
            return False
        if not self.ledger.lower.exhausted:
            self._gp_generation()
        if not self.ledger.upper.exhausted:
            self._ga_generation()
        self.record_point()
        return True

    # -- extraction ----------------------------------------------------------

    def extract_result(self, seed_label: int, wall_time: float) -> RunResult:
        """§V-B protocol: best %-gap from the lower-level archive, best
        upper-level fitness from the upper-level archive."""
        best_ul = self.ul_archive.best()
        live = [ind for ind in self.ul_pop if np.isfinite(ind.fitness)]
        final_best = max(live, key=lambda ind: ind.fitness) if live else None
        return RunResult(
            algorithm=self.name,
            instance_name=self.instance.name,
            seed=seed_label,
            best_gap=self.ll_archive.best_score(),
            best_upper=best_ul.score,
            best_solution=solution_from_entry(best_ul, self.instance.n_bundles),
            history=self.history,
            ul_evaluations_used=self.ul_used,
            ll_evaluations_used=self.ll_used,
            wall_time=wall_time,
            extras={
                "champion": self.champion.to_infix() if self.champion else "",
                "champion_size": self.champion.size if self.champion else 0,
                "champion_tree": self.champion,
                "lp_cache": self.evaluator.cache_stats,
                "pipeline": self.pipeline.stats,
                "eval_mode": self.eval_mode.mode,
                "opponent_pools": {
                    "upper": len(self.eval_mode.upper_pool),
                    "lower": len(self.eval_mode.lower_pool),
                },
                # The *surviving* best — the honest convergence measure
                # for competitive runs (archived scores can be stale
                # optimism from weaker early panels).
                "final_best_prices": (
                    final_best.genome.copy() if final_best is not None else None
                ),
                "final_best_fitness": (
                    final_best.fitness if final_best is not None else np.nan
                ),
            },
        )

    # -- checkpointing -------------------------------------------------------

    def _state_payload(self) -> dict:
        return {
            "ul_pop": list(self.ul_pop),
            "ll_pop": list(self.ll_pop),
            "ul_archive": self.ul_archive.state_dict(),
            "ll_archive": self.ll_archive.state_dict(),
            "champion": self.champion,
            "eval_mode": self.eval_mode.state_dict(),
        }

    def _load_payload(self, payload: dict) -> None:
        self.ul_pop = list(payload["ul_pop"])
        self.ll_pop = list(payload["ll_pop"])
        self.ul_archive.load_state_dict(payload["ul_archive"])
        self.ll_archive.load_state_dict(payload["ll_archive"])
        self.champion = payload["champion"]
        mode_state = payload.get("eval_mode")  # absent in pre-mode checkpoints
        if mode_state is not None:
            self.eval_mode.load_state_dict(mode_state)


def run_carbon(
    instance: BcpopInstance,
    config: CarbonConfig | None = None,
    seed: int = 0,
    lp_backend: str = "scipy",
    executor: Executor | None = None,
    observers=(),
    resume_state: dict | None = None,
) -> RunResult:
    """Convenience wrapper: one seeded, engine-driven CARBON run."""
    algorithm = Carbon(
        instance, config=config, rng=np.random.default_rng(seed),
        lp_backend=lp_backend, executor=executor,
    )
    return EngineLoop(algorithm, observers=observers, resume_state=resume_state).run(
        seed_label=seed
    )
