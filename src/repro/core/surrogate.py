"""Lower-level-approximation baseline (taxonomy branch APP, paper §III).

The APP family (BLEAQ's quadratic reaction models, Kieffer et al.'s
Bayesian value surrogates — both cited in §III) spends real lower-level
solves only on *promising* upper-level decisions: a regression model
learns the mapping from prices to outcomes and pre-screens candidates.

This implementation follows the value-surrogate variant (the reaction
``y(x)`` is binary here, so BLEAQ's continuous reaction model does not
apply — the paper itself notes the APP methods "have only been designed
to cope with continuous bi-level optimization problems"; this adaptation
is what it takes to make the idea run on the BCPOP at all):

* a ridge-regularized quadratic model ``F̂(x)`` of the *leader revenue*
  is fit to all genuinely evaluated points,
* each GA generation generates an oversized offspring pool, ranks it by
  ``F̂``, and sends only the top fraction to the true evaluator (one
  greedy solve + cached LP each, exactly like CARBON's champion path with
  a fixed Chvátal heuristic),
* every true evaluation feeds back into the training set.

Against CARBON this isolates a different axis than the nested baseline:
NSQ shows what evolving the *solver* buys; APP shows what *saving
evaluations* buys when the solver stays fixed.
"""

from __future__ import annotations

import numpy as np

from typing import TYPE_CHECKING

from repro.bcpop.instance import BcpopInstance

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.config import EvalModeConfig
from repro.core.archive import Archive
from repro.core.config import UpperLevelConfig
from repro.core.engine import EngineAlgorithm, EngineLoop
from repro.core.results import RunResult, solution_from_entry
from repro.covering.heuristics import make_heuristic
from repro.ga.encoding import Bounds
from repro.ga.operators import polynomial_mutation, sbx_crossover
from repro.ga.population import Individual, random_real_population
from repro.ga.selection import binary_tournament

__all__ = ["QuadraticSurrogate", "SurrogateAssisted", "run_surrogate"]


class QuadraticSurrogate:
    """Ridge-regularized quadratic regression ``F̂(x)``.

    Features: ``[1, x, x²]`` (diagonal quadratic — the full cross-term
    model is O(n²) features and overfits at EA sample sizes).  Refit from
    scratch on every update batch; training sets stay in the hundreds, so
    the normal equations are cheap.
    """

    def __init__(self, n_features: int, ridge: float = 1e-3) -> None:
        if n_features < 1:
            raise ValueError(f"n_features must be >= 1, got {n_features}")
        if ridge <= 0:
            raise ValueError(f"ridge must be positive, got {ridge}")
        self.n_features = n_features
        self.ridge = ridge
        self._x: list[np.ndarray] = []
        self._y: list[float] = []
        self._coef: np.ndarray | None = None

    @property
    def n_samples(self) -> int:
        return len(self._y)

    @property
    def is_fit(self) -> bool:
        return self._coef is not None

    def _design(self, xs: np.ndarray) -> np.ndarray:
        xs = np.atleast_2d(xs)
        return np.hstack([np.ones((xs.shape[0], 1)), xs, xs**2])

    def add(self, x: np.ndarray, value: float) -> None:
        """Record one true evaluation (non-finite targets are skipped)."""
        if not np.isfinite(value):
            return
        x = np.asarray(x, dtype=np.float64).ravel()
        if x.size != self.n_features:
            raise ValueError(f"x size {x.size} != {self.n_features}")
        self._x.append(x.copy())
        self._y.append(float(value))

    def fit(self) -> bool:
        """(Re)fit; returns False while there are too few samples."""
        d = 1 + 2 * self.n_features
        if self.n_samples < max(d // 2, 8):
            return False
        X = self._design(np.array(self._x))
        y = np.array(self._y)
        A = X.T @ X + self.ridge * np.eye(X.shape[1])
        self._coef = np.linalg.solve(A, X.T @ y)
        return True

    def predict(self, xs: np.ndarray) -> np.ndarray:
        """Predict F̂ for one vector or a batch (raises before first fit)."""
        if self._coef is None:
            raise RuntimeError("surrogate not fit yet")
        return self._design(np.atleast_2d(xs)) @ self._coef

    def state_dict(self) -> dict:
        """Training set and coefficients (exact resume needs the fitted
        coefficients as-is, not a refit — solves are float-sensitive)."""
        return {"x": list(self._x), "y": list(self._y), "coef": self._coef}

    def load_state_dict(self, state: dict) -> None:
        self._x = [np.asarray(x, dtype=np.float64) for x in state["x"]]
        self._y = [float(y) for y in state["y"]]
        coef = state["coef"]
        self._coef = None if coef is None else np.asarray(coef, dtype=np.float64)


class SurrogateAssisted(EngineAlgorithm):
    """Surrogate-pre-screened GA over prices with a fixed LL heuristic.

    Parameters
    ----------
    instance, config, rng, lp_backend:
        As in the other algorithms; ``config.fitness_evaluations`` counts
        *true* lower-level evaluations only (surrogate queries are free —
        the APP family's selling point).
    ll_solver:
        Fixed lower-level heuristic name (default Chvátal).
    oversample:
        Offspring-pool multiplier; the surrogate keeps the top
        ``1/oversample`` fraction for true evaluation.
    """

    def __init__(
        self,
        instance: BcpopInstance,
        config: UpperLevelConfig | None = None,
        rng: np.random.Generator | None = None,
        ll_solver: str = "chvatal",
        oversample: int = 4,
        lp_backend: str = "scipy",
        eval_mode: "EvalModeConfig | None" = None,
    ) -> None:
        if oversample < 1:
            raise ValueError(f"oversample must be >= 1, got {oversample}")
        self.instance = instance
        self.config = config or UpperLevelConfig()
        self.rng = self._init_rng(rng, component="surrogate")
        self.evaluator = instance.make_evaluator(lp_backend=lp_backend)
        self.bounds = Bounds(*instance.price_bounds)
        self.score_fn = make_heuristic(ll_solver, rng=self.rng)
        self.ll_solver = ll_solver
        self.oversample = oversample
        self.surrogate = QuadraticSurrogate(instance.n_own)
        mode = self._init_eval_mode(eval_mode)
        # Like the nested baseline: no evolving follower, so non-``current``
        # modes grade against a fixed classical-solver ensemble.
        self._solver_panel = [self.score_fn]
        if not mode.is_current:
            others = [
                name
                for name in ("chvatal", "cost", "coverage", "dual", "lp_guided")
                if name != ll_solver
            ]
            self._solver_panel += [
                make_heuristic(name) for name in others[: mode.config.panel_size - 1]
            ]

        # Single true-evaluation budget; both meters charged per solve
        # (one LL solve per UL evaluation), as in the nested baseline.
        self._engine_init(
            self.config.fitness_evaluations, self.config.fitness_evaluations
        )
        self.screened_out = 0
        self.archive = Archive(self.config.archive_size, minimize=False)
        self.population: list[Individual] = []

    @property
    def name(self) -> str:
        return f"SURROGATE[{self.ll_solver}]"

    @property
    def ul_used(self) -> int:
        return self.ledger.upper.used

    @property
    def budget_left(self) -> int:
        return self.ledger.upper.left

    def _true_evaluate(self, ind: Individual) -> bool:
        if self.ledger.upper.exhausted:
            return False
        chunk = [
            self.evaluator.evaluate_heuristic(ind.genome, solver)
            for solver in self._solver_panel
        ]
        # One UL evaluation is one follower decision regardless of
        # ensemble width, so the historical ul == ll accounting holds.
        self.ledger.charge(upper=1, lower=1)
        payoffs = [out.revenue if out.feasible else -np.inf for out in chunk]
        ind.fitness = self.eval_mode.aggregate(payoffs)
        rep = chunk[self.eval_mode.representative_index(payoffs)]
        ind.aux = {
            "gap": rep.gap,
            "selection": rep.selection,
            "ll_cost": rep.ll_cost,
            "lower_bound": rep.lower_bound,
        }
        self.surrogate.add(ind.genome, ind.fitness)
        self.archive.add(ind.genome.copy(), ind.fitness, aux=dict(ind.aux))
        if not self.eval_mode.is_current and np.isfinite(ind.fitness):
            self.eval_mode.record_upper(
                ind.genome.copy(), ind.fitness, self.generation
            )
        return True

    def generation_metrics(self) -> dict[str, float]:
        fits = [i.fitness for i in self.population if np.isfinite(i.fitness)]
        gaps = [
            i.aux.get("gap", np.nan)
            for i in self.population
            if np.isfinite(i.aux.get("gap", np.nan))
        ]
        return {
            "best_fitness": max(fits) if fits else np.nan,
            "best_gap": min(gaps) if gaps else np.nan,
            "mean_gap": float(np.mean(gaps)) if gaps else np.nan,
        }

    def initialize(self) -> None:
        self.population = random_real_population(
            self.bounds, self.config.population_size, self.rng
        )
        for ind in self.population:
            if not self._true_evaluate(ind):
                ind.fitness = -np.inf
        self.surrogate.fit()
        self.record_point()

    def _make_offspring(self, count: int) -> list[Individual]:
        cfg = self.config
        fits = [i.fitness for i in self.population]
        mates = binary_tournament(self.population, fits, count, self.rng)
        out: list[Individual] = []
        for i in range(0, len(mates) - 1, 2):
            g1, g2 = mates[i].genome, mates[i + 1].genome
            if self.rng.random() < cfg.crossover_probability:
                g1, g2 = sbx_crossover(g1, g2, self.bounds, self.rng, eta=cfg.sbx_eta)
            out.append(Individual(genome=g1.copy()))
            out.append(Individual(genome=g2.copy()))
        if len(mates) % 2:
            out.append(Individual(genome=mates[-1].genome.copy()))
        for ind in out:
            ind.genome = polynomial_mutation(
                ind.genome, self.bounds, self.rng,
                eta=cfg.polynomial_eta,
                per_gene_probability=cfg.mutation_probability,
            )
        return out[:count]

    def step(self) -> bool:
        if self.ledger.upper.exhausted:
            return False
        cfg = self.config
        pool = self._make_offspring(cfg.population_size * self.oversample)
        if self.surrogate.is_fit and self.oversample > 1:
            preds = self.surrogate.predict(np.array([i.genome for i in pool]))
            order = np.argsort(-preds)
            keep = [pool[j] for j in order[: cfg.population_size]]
            self.screened_out += len(pool) - len(keep)
        else:
            keep = pool[: cfg.population_size]
        for ind in keep:
            if not self._true_evaluate(ind):
                ind.fitness = -np.inf
        self.surrogate.fit()
        best = self.archive.best()
        elite = Individual(genome=best.item.copy(), fitness=best.score, aux=dict(best.aux))
        self.population = keep[: cfg.population_size - 1] + [elite]
        self.record_point()
        return True

    def extract_result(self, seed_label: int, wall_time: float) -> RunResult:
        best = self.archive.best()
        gaps = [
            e.aux.get("gap", np.inf)
            for e in self.archive.entries()
            if np.isfinite(e.aux.get("gap", np.inf))
        ]
        return RunResult(
            algorithm=self.name,
            instance_name=self.instance.name,
            seed=seed_label,
            best_gap=min(gaps) if gaps else np.inf,
            best_upper=best.score,
            best_solution=solution_from_entry(best, self.instance.n_bundles),
            history=self.history,
            ul_evaluations_used=self.ul_used,
            ll_evaluations_used=self.ul_used,
            wall_time=wall_time,
            extras={
                "screened_out": self.screened_out,
                "surrogate_samples": self.surrogate.n_samples,
                "oversample": self.oversample,
                "eval_mode": self.eval_mode.mode,
            },
        )

    # -- checkpointing -------------------------------------------------------

    def _state_payload(self) -> dict:
        return {
            "population": list(self.population),
            "archive": self.archive.state_dict(),
            "screened_out": self.screened_out,
            "surrogate": self.surrogate.state_dict(),
            "eval_mode": self.eval_mode.state_dict(),
        }

    def _load_payload(self, payload: dict) -> None:
        self.population = list(payload["population"])
        self.archive.load_state_dict(payload["archive"])
        self.screened_out = int(payload["screened_out"])
        self.surrogate.load_state_dict(payload["surrogate"])
        mode_state = payload.get("eval_mode")  # absent in pre-mode checkpoints
        if mode_state is not None:
            self.eval_mode.load_state_dict(mode_state)


def run_surrogate(
    instance: BcpopInstance,
    config: UpperLevelConfig | None = None,
    seed: int = 0,
    ll_solver: str = "chvatal",
    oversample: int = 4,
    lp_backend: str = "scipy",
    observers=(),
    resume_state: dict | None = None,
    eval_mode: "EvalModeConfig | None" = None,
) -> RunResult:
    """Convenience wrapper: one seeded, engine-driven surrogate run."""
    algorithm = SurrogateAssisted(
        instance, config=config, rng=np.random.default_rng(seed),
        ll_solver=ll_solver, oversample=oversample, lp_backend=lp_backend,
        eval_mode=eval_mode,
    )
    return EngineLoop(algorithm, observers=observers, resume_state=resume_state).run(
        seed_label=seed
    )
