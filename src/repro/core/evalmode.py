"""Engine-level competitive evaluation modes (opponent pools).

CARBON-style competitive fitness is classically measured against the
*current* opposing population only — the textbook recipe for cycling and
forgetting (Lehre's runtime analysis of competitive CoEAs on maximin
bilinear functions makes the failure precise; PAPERS.md).  This module
implements the standard counter-measures as one pluggable component the
engine algorithms share, following the archive / hall-of-fame / maxsolve /
generalist menu of Nolfi & Pagliuca (SNIPPETS.md Snippet 2):

* :class:`OpponentPool` — a bounded, deduplicated archive of past
  adversaries built on :class:`repro.core.archive.Archive` (canonical
  total order, so pool content is insertion-order independent), with
  ``stable_hash``-style identities and typed ``on_archive`` events.
* :class:`EvaluationMode` — the policy object an algorithm consults for
  (a) which archived opponents to mix into a grading sample, (b) the
  panel of opponents each candidate faces, and (c) how per-opponent
  payoffs fold into one fitness value.

Mode semantics (see :class:`repro.core.config.EvalModeConfig` for the
user-facing description): ``current`` is the exact historical behaviour —
every method degenerates to a no-op / single-opponent panel so wired
algorithms stay bit-identical to their pre-mode selves; the other four
modes differ in *which* pool members form the panel (newest champions,
elites, a quality spread, a uniform sample) and in the payoff fold
(worst-case, solved-count, mean).

Determinism: panel selection happens in the parent process, uses the
algorithm's own RNG only for the ``generalist`` sample, and orders
members by the archive's canonical order — so serial and process-pool
runs see identical panels, and checkpoint/resume restores pools exactly
(:meth:`EvaluationMode.state_dict`).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.core.archive import Archive, ArchiveEntry, _default_identity
from repro.core.config import EVAL_MODES, EvalModeConfig
from repro.core.events import EngineEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.events import EventBus

__all__ = ["EVAL_MODES", "EvalModeConfig", "OpponentPool", "EvaluationMode", "stable_identity"]


def stable_identity(item: Any) -> Any:
    """Content-addressed dedup key: GP trees hash by their canonical
    serialization (``SyntaxTree.stable_hash`` — stable across processes
    and sessions, unlike ``hash()``); arrays quantize to bytes; anything
    else is its own key."""
    stable = getattr(item, "stable_hash", None)
    if callable(stable):
        return stable()
    return _default_identity(item)


class OpponentPool:
    """A bounded, deduplicated pool of past adversaries.

    Parameters
    ----------
    maxsize:
        Pool capacity; eviction is the archive's deterministic worst-out
        under the canonical (score, identity) order.
    minimize:
        Ranking direction for the *rank* score (``False`` when higher
        rank wins — elite prey pools and recency-ranked hall-of-fame
        pools; ``True`` for gap-ranked predator pools).
    maximize_quality:
        Direction of the separately tracked ``best_quality`` watermark
        (monotone by construction — the hall-of-fame invariant the
        property tests pin).
    label:
        Pool name in ``on_archive`` event payloads (e.g. ``"upper"``).
    """

    def __init__(
        self,
        maxsize: int,
        minimize: bool,
        maximize_quality: bool,
        label: str,
    ) -> None:
        self.archive = Archive(maxsize, minimize=minimize, identity=stable_identity)
        self.maximize_quality = maximize_quality
        self.label = label
        self.offered = 0
        self.stored = 0
        self.best_quality: float | None = None

    def offer(self, item: Any, rank_score: float, quality: float) -> bool:
        """Offer an adversary; returns True iff the archive stored it."""
        self.offered += 1
        stored = self.archive.add(item, float(rank_score), aux={"quality": float(quality)})
        if stored:
            self.stored += 1
        if math.isfinite(quality):
            if self.best_quality is None:
                self.best_quality = float(quality)
            elif self.maximize_quality:
                self.best_quality = max(self.best_quality, float(quality))
            else:
                self.best_quality = min(self.best_quality, float(quality))
        return stored

    def __len__(self) -> int:
        return len(self.archive)

    def entries(self) -> list[ArchiveEntry]:
        """Members in canonical rank order (best rank first)."""
        return self.archive.entries()

    def top(self, k: int) -> list[Any]:
        """The ``k`` best-ranked members."""
        return [e.item for e in self.archive.top(k)]

    def spread(self, k: int) -> list[Any]:
        """``k`` members spanning the rank range (easy-to-hard panel for
        the maxsolve fold); evenly spaced ranks, deterministic."""
        members = self.entries()
        if len(members) <= k:
            return [e.item for e in members]
        idx = np.unique(np.linspace(0, len(members) - 1, k).astype(int))
        return [members[int(i)].item for i in idx]

    def sample(self, k: int, rng: np.random.Generator) -> list[Any]:
        """Uniform sample without replacement (canonical member order, so
        the draw is a pure function of the RNG state)."""
        members = self.entries()
        if len(members) <= k:
            return [e.item for e in members]
        idx = rng.choice(len(members), size=k, replace=False)
        return [members[int(i)].item for i in idx]

    def state_dict(self) -> dict[str, Any]:
        return {
            "archive": self.archive.state_dict(),
            "offered": self.offered,
            "stored": self.stored,
            "best_quality": self.best_quality,
        }

    def load_state_dict(self, state: dict[str, Any]) -> None:
        self.archive.load_state_dict(state["archive"])
        self.offered = int(state["offered"])
        self.stored = int(state["stored"])
        quality = state["best_quality"]
        self.best_quality = None if quality is None else float(quality)


class EvaluationMode:
    """The pluggable competitive-evaluation policy of one algorithm.

    Holds two opponent pools — ``upper`` (past upper-level decisions the
    lower side is graded against) and ``lower`` (past lower-level
    champions the upper side is graded against) — and answers the three
    questions a wired algorithm asks each generation: extra grading
    opponents (:meth:`upper_panel`), the candidate's opponent panel
    (:meth:`lower_panel`), and the payoff fold (:meth:`aggregate`).

    Under ``"current"`` every method is the identity of the historical
    behaviour: empty panels, champion-only evaluation, first payoff
    through unchanged, and no recording — wired algorithms are
    bit-identical to their pre-mode code path.

    Parameters
    ----------
    config:
        The mode and its knobs.
    algorithm:
        Back-reference to the owning algorithm; used for the event bus
        (``on_archive``) and the current generation, both read lazily.
    """

    def __init__(self, config: EvalModeConfig, algorithm: Any = None) -> None:
        self.config = config
        self.mode = config.mode
        self._algorithm = algorithm
        # Recency-ranked for hall-of-fame (newest generation wins the
        # rank), quality-ranked otherwise.
        recency = self.mode == "hall-of-fame"
        self.upper_pool = OpponentPool(
            config.pool_size,
            minimize=False,
            maximize_quality=True,
            label="upper",
        )
        self.lower_pool = OpponentPool(
            config.pool_size,
            minimize=False if recency else True,
            maximize_quality=False,
            label="lower",
        )

    @property
    def is_current(self) -> bool:
        return self.mode == "current"

    # -- recording ----------------------------------------------------------

    def _emit(self, pool: OpponentPool, quality: float) -> None:
        algo = self._algorithm
        if algo is None:
            return
        events: EventBus | None = getattr(algo, "events", None)
        if events is None:
            return
        events.archive(
            EngineEvent(
                algorithm=algo,
                generation=getattr(algo, "generation", 0),
                data={
                    "pool": pool.label,
                    "mode": self.mode,
                    "score": quality,
                    "pool_size": len(pool),
                    "pool_stored": pool.stored,
                    "pool_offered": pool.offered,
                },
            )
        )

    def record_upper(self, item: Any, quality: float, generation: int) -> None:
        """Offer an upper-level adversary (e.g. the generation's best
        pricing vector, fitness = ``quality``, higher better)."""
        if self.is_current:
            return
        rank = float(generation) if self.mode == "hall-of-fame" else float(quality)
        if self.upper_pool.offer(item, rank, float(quality)):
            self._emit(self.upper_pool, float(quality))

    def record_lower(self, item: Any, quality: float, generation: int) -> None:
        """Offer a lower-level adversary (e.g. the current champion
        heuristic, gap = ``quality``, lower better)."""
        if self.is_current:
            return
        rank = float(generation) if self.mode == "hall-of-fame" else float(quality)
        if self.lower_pool.offer(item, rank, float(quality)):
            self._emit(self.lower_pool, float(quality))

    # -- panel selection ----------------------------------------------------

    def _select(
        self, pool: OpponentPool, k: int, rng: np.random.Generator
    ) -> list[Any]:
        if self.is_current or k <= 0 or not len(pool):
            return []
        if self.mode in ("hall-of-fame", "archive"):
            return pool.top(k)
        if self.mode == "maxsolve":
            return pool.spread(k)
        return pool.sample(k, rng)  # generalist

    def upper_panel(self, k: int, rng: np.random.Generator) -> list[Any]:
        """Archived upper-level decisions to mix into the sample the
        lower side is graded against (empty under ``"current"``)."""
        return self._select(self.upper_pool, k, rng)

    def lower_panel(self, champion: Any, rng: np.random.Generator) -> list[Any]:
        """The opponent panel one upper-level candidate faces: the
        current champion first, then archived adversaries (deduplicated
        against the champion) up to ``panel_size``."""
        panel = [champion]
        if self.is_current:
            return panel
        champion_key = stable_identity(champion)
        for item in self._select(self.lower_pool, self.config.panel_size, rng):
            if len(panel) >= self.config.panel_size:
                break
            if stable_identity(item) != champion_key:
                panel.append(item)
        return panel

    def opponent(self, side: str, rng: np.random.Generator) -> Any | None:
        """One archived adversary for pairing-based algorithms (COBRA's
        co-evolution operator); ``None`` under ``"current"`` or while the
        pool is empty — callers then keep their legacy pairing."""
        pool = self.upper_pool if side == "upper" else self.lower_pool
        if self.is_current or not len(pool):
            return None
        if self.mode == "generalist":
            members = [e.item for e in pool.entries()]
        elif self.mode == "maxsolve":
            members = pool.spread(self.config.panel_size)
        else:
            members = pool.top(self.config.panel_size)
        return members[int(rng.integers(len(members)))]

    # -- payoff folding -----------------------------------------------------

    def aggregate(self, payoffs: list[float]) -> float:
        """Fold per-opponent payoffs (maximize orientation) into one
        fitness value.  ``current`` passes the single payoff through."""
        if not payoffs:
            raise ValueError("cannot aggregate an empty payoff list")
        if self.is_current or len(payoffs) == 1:
            return float(payoffs[0])
        if self.mode in ("hall-of-fame", "archive"):
            return float(min(payoffs))
        if self.mode == "generalist":
            return float(np.mean(payoffs))
        # maxsolve: solved count, mean payoff squashed into (0, 1) as the
        # deterministic tie-break.
        solved = sum(1 for p in payoffs if p >= self.config.solved_threshold)
        mean = float(np.mean(payoffs))
        tie = 0.0 if math.isnan(mean) else 0.5 + math.atan(mean) / math.pi
        return float(solved) + tie

    def representative_index(self, payoffs: list[float]) -> int:
        """Which panel outcome represents the candidate in reporting/aux:
        the binding worst case for worst-case folds, the champion
        otherwise (index 0 — the panel always leads with the champion)."""
        if self.mode in ("hall-of-fame", "archive") and len(payoffs) > 1:
            return int(np.argmin(payoffs))
        return 0

    # -- checkpointing ------------------------------------------------------

    def state_dict(self) -> dict[str, Any]:
        return {
            "mode": self.mode,
            "upper_pool": self.upper_pool.state_dict(),
            "lower_pool": self.lower_pool.state_dict(),
        }

    def load_state_dict(self, state: dict[str, Any]) -> None:
        if state["mode"] != self.mode:
            raise ValueError(
                f"checkpoint eval mode {state['mode']!r} != configured {self.mode!r}"
            )
        self.upper_pool.load_state_dict(state["upper_pool"])
        self.lower_pool.load_state_dict(state["lower_pool"])
