"""Algorithm parameter sets (paper Table II).

``CarbonConfig.paper()`` / ``CobraConfig.paper()`` reproduce Table II
verbatim; ``.quick()`` variants shrink the evaluation budgets and
populations to laptop/test scale while keeping every ratio (crossover /
mutation / reproduction probabilities, archive-to-population ratio)
identical, so shape claims transfer.

Design choices the table leaves open are spelled out in field docstrings
and DESIGN.md §5 (per-gene vs per-individual mutation, GP tournament size,
heuristic evaluation sample size, COBRA improvement-phase length).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = [
    "EVAL_MODES",
    "EvalModeConfig",
    "ExecutionConfig",
    "UpperLevelConfig",
    "CarbonConfig",
    "CobraConfig",
]

#: The engine's evaluation-mode vocabulary (Nolfi & Pagliuca's menu plus
#: the historical behaviour).  Semantics live in :mod:`repro.core.evalmode`.
EVAL_MODES = ("current", "hall-of-fame", "archive", "maxsolve", "generalist")


@dataclass(frozen=True)
class EvalModeConfig:
    """How competitive fitness is measured against the opposing side.

    ``"current"`` reproduces the historical behaviour exactly (opponents
    come from the current opposing population / champion only; the code
    path and RNG draw sequence are bit-identical to runs predating this
    config).  The other modes grade against *opponent pools* — bounded,
    deduplicated archives of past adversaries — which is the classic
    defence against co-evolutionary cycling and forgetting:

    ``"hall-of-fame"``
        Pool of the most *recent* per-generation champions; candidates
        must beat the whole panel (worst-case aggregation), so best-case
        fitness is monotone — old skills cannot be silently forgotten.
    ``"archive"``
        Elite pool of the best-scoring past opponents (dedup via
        ``stable_hash``-style identities, bounded size, deterministic
        eviction); worst-case aggregation.  The mode the convergence gate
        runs under.
    ``"maxsolve"``
        Ficici's maxsolve flavour: fitness is the number of panel
        opponents *solved* (payoff at or above ``solved_threshold``),
        with the mean payoff squashed into (0, 1) as a deterministic
        tie-break.  The panel spans the pool's quality range.
    ``"generalist"``
        Mean payoff over a uniformly sampled panel from the pool —
        rewards generalists rather than specialists against the single
        current champion.

    Parameters
    ----------
    mode:
        One of :data:`EVAL_MODES`.
    pool_size:
        Opponent-pool capacity (bounded-archive maxsize).
    panel_size:
        Opponents each candidate is evaluated against under non-current
        modes (the current champion always included).  ``"current"``
        always uses exactly one.
    solved_threshold:
        Payoff counting as "solved" for ``"maxsolve"``.  The default 0.0
        matches the bilinear ground-truth problem, whose maximin value is
        exactly zero; revenue-scaled problems should set their own level.
    """

    mode: str = "current"
    pool_size: int = 50
    panel_size: int = 4
    solved_threshold: float = 0.0

    def __post_init__(self) -> None:
        if self.mode not in EVAL_MODES:
            raise ValueError(
                f"unknown eval mode {self.mode!r}; expected one of {EVAL_MODES}"
            )
        if self.pool_size < 1:
            raise ValueError(f"pool_size must be >= 1, got {self.pool_size}")
        if self.panel_size < 1:
            raise ValueError(f"panel_size must be >= 1, got {self.panel_size}")


def _default_memo_size() -> int:
    """The evaluator's own default (import deferred: config stays pure)."""
    from repro.bcpop.evaluate import DEFAULT_MEMO_SIZE

    return DEFAULT_MEMO_SIZE


@dataclass(frozen=True)
class ExecutionConfig:
    """How fitness evaluations are executed (not a paper parameter).

    The executor choice never changes results — the parallel pipeline is
    bit-identical to serial execution (tests/test_parallel_determinism.py)
    — only wall-clock time and the memo/cache statistics reported in
    ``RunResult.extras``.

    Parameters
    ----------
    executor:
        ``"serial"`` (deterministic reference, default) or ``"processes"``
        (persistent spawn pool, the paper's HPC-cluster setting).
    workers:
        Process count for ``"processes"``; ``None`` = ``os.cpu_count()``.
    chunk_size:
        Tasks per pool dispatch; ``None`` lets the executor amortize IPC.
    memo_size:
        Outcome-memo capacity in front of the lower-level evaluator
        (0 disables memoization).  Defaults to
        :data:`repro.bcpop.evaluate.DEFAULT_MEMO_SIZE` — resolved lazily
        so this module stays pure data at import time.
    batches_per_worker:
        Pipeline load-balancing factor (batches per worker per map call).
    task_timeout:
        Per-task wall-clock deadline in seconds for ``"processes"``.
        Setting it enables the supervised executor (hung workers are
        terminated, respawned, and their task retried).
    max_retries:
        Re-dispatch bound per task under supervision before the task is
        quarantined to serial in-process evaluation.
    supervised:
        Force the crash-recovering supervised dispatch path even without
        a ``task_timeout``.  Like every other field here it changes only
        wall time and reported stats, never results.
    rng_audit:
        Enable the RNG-audit sanitizer: the algorithm's generator is
        wrapped by :class:`repro.parallel.rng.RngAudit`, which counts
        draws per component per generation and exposes the full draw
        trace.  The determinism tests assert serial/parallel trace
        equality — the runtime cross-check for what ``repro-lint``'s
        static R001 rule can't see.  Reported via
        ``RunResult.extras["rng_audit"]``; draws themselves are
        unchanged (the wrapper shares the bit generator).
    compile:
        Lower GP trees to :mod:`repro.gp.compile` bytecode before the
        greedy solve (default).  Bit-identical to the interpreter —
        ``compile=False`` restores the original per-node evaluation path
        and serves as the differential-testing oracle.
    lp_warm_start:
        Warm-start own-simplex LP relaxations from the nearest cached
        basis.  Off by default: degenerate optima can resolve to an
        alternate vertex (same bound, different duals), so this is an
        opt-in speed knob, never part of the determinism-gated defaults.
    profile_hot_path:
        Enable :class:`repro.utils.profiling.HotPathTimers` around the
        kernel sections (compile/LP/greedy).  Aggregate seconds are
        reported under ``RunResult.extras["pipeline"]["timers"]`` — the
        key exists only when this flag is on, so default runs carry no
        wall-clock data (lint rule R002's contract).
    """

    executor: str = "serial"
    workers: int | None = None
    chunk_size: int | None = None
    memo_size: int = field(default_factory=lambda: _default_memo_size())
    batches_per_worker: int = 4
    task_timeout: float | None = None
    max_retries: int = 2
    supervised: bool = False
    rng_audit: bool = False
    compile: bool = True
    lp_warm_start: bool = False
    profile_hot_path: bool = False

    def __post_init__(self) -> None:
        if self.executor not in ("serial", "processes"):
            raise ValueError(
                f"executor must be 'serial' or 'processes', got {self.executor!r}"
            )
        if self.workers is not None and self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.memo_size < 0:
            raise ValueError(f"memo_size must be >= 0, got {self.memo_size}")
        if self.batches_per_worker < 1:
            raise ValueError("batches_per_worker must be >= 1")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError(f"task_timeout must be > 0, got {self.task_timeout}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")

    def make_executor(self, fault_injector=None):
        """Build the configured executor (import deferred: config stays a
        pure-data module).  ``fault_injector`` is the chaos-test hook —
        never part of the persisted config."""
        from repro.parallel.executor import make_executor

        return make_executor(
            self.executor,
            workers=self.workers,
            chunk_size=self.chunk_size,
            task_timeout=self.task_timeout,
            max_retries=self.max_retries,
            fault_injector=fault_injector,
            supervised=self.supervised,
        )


@dataclass(frozen=True)
class UpperLevelConfig:
    """Shared upper-level GA settings (identical for both algorithms).

    Table II rows: UL encoding (continuous), population 100, archive 100,
    50 000 fitness evaluations, binary tournament, SBX 0.85, polynomial
    mutation 0.01.
    """

    population_size: int = 100
    archive_size: int = 100
    fitness_evaluations: int = 50_000
    crossover_probability: float = 0.85
    #: Table II says "mutation probability 0.01"; we read it per *gene*
    #: (the DEAP convention for polynomial mutation's indpb).
    mutation_probability: float = 0.01
    sbx_eta: float = 15.0
    polynomial_eta: float = 20.0

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise ValueError("UL population must have >= 2 individuals")
        if not (0.0 <= self.crossover_probability <= 1.0):
            raise ValueError("crossover probability out of [0, 1]")
        if not (0.0 <= self.mutation_probability <= 1.0):
            raise ValueError("mutation probability out of [0, 1]")
        if self.fitness_evaluations < self.population_size:
            raise ValueError("UL budget smaller than one population evaluation")


@dataclass(frozen=True)
class CarbonConfig:
    """CARBON parameters (Table II, left column).

    The lower level evolves GP syntax trees: one-point crossover 0.85,
    uniform mutation 0.1, reproduction 0.05, plain (size-3) tournament.
    """

    upper: UpperLevelConfig = field(default_factory=UpperLevelConfig)
    ll_population_size: int = 100
    ll_archive_size: int = 100
    ll_fitness_evaluations: int = 50_000
    ll_tournament_size: int = 3
    ll_crossover_probability: float = 0.85
    ll_mutation_probability: float = 0.10
    ll_reproduction_probability: float = 0.05
    #: GP tree shape limits (Koza defaults; DESIGN.md §5).
    gp_min_init_depth: int = 1
    gp_max_init_depth: int = 4
    gp_max_depth: int = 17
    gp_max_size: int = 256
    gp_erc_probability: float = 0.1
    #: Number of upper-level decisions each heuristic's %-gap is averaged
    #: over (the paper does not fix this; ablated in the benches).
    heuristic_eval_sample: int = 5
    #: Evaluation substrate (executor kind, workers, memo) — results are
    #: executor-invariant; see :class:`ExecutionConfig`.
    execution: ExecutionConfig = field(default_factory=ExecutionConfig)
    #: Competitive evaluation mode (opponent pools); ``"current"`` is the
    #: exact historical behaviour.  See :class:`EvalModeConfig`.
    eval_mode: EvalModeConfig = field(default_factory=EvalModeConfig)

    def __post_init__(self) -> None:
        total = (
            self.ll_crossover_probability
            + self.ll_mutation_probability
            + self.ll_reproduction_probability
        )
        if total > 1.0 + 1e-9:
            raise ValueError(f"GP operator probabilities sum to {total} > 1")
        if self.ll_population_size < 2:
            raise ValueError("LL population must have >= 2 individuals")
        if self.heuristic_eval_sample < 1:
            raise ValueError("heuristic_eval_sample must be >= 1")
        if self.gp_min_init_depth > self.gp_max_init_depth:
            raise ValueError("gp_min_init_depth > gp_max_init_depth")

    @classmethod
    def paper(cls) -> "CarbonConfig":
        """Table II verbatim."""
        return cls()

    @classmethod
    def quick(
        cls,
        ul_evaluations: int = 2_000,
        ll_evaluations: int = 2_000,
        population_size: int = 24,
    ) -> "CarbonConfig":
        """Laptop/test-scale budget with the paper's operator ratios."""
        return cls(
            upper=UpperLevelConfig(
                population_size=population_size,
                archive_size=population_size,
                fitness_evaluations=ul_evaluations,
            ),
            ll_population_size=population_size,
            ll_archive_size=population_size,
            ll_fitness_evaluations=ll_evaluations,
            heuristic_eval_sample=3,
        )

    def scaled(self, factor: float) -> "CarbonConfig":
        """Multiply both evaluation budgets by ``factor``."""
        return replace(
            self,
            upper=replace(
                self.upper,
                fitness_evaluations=max(
                    self.upper.population_size,
                    int(self.upper.fitness_evaluations * factor),
                ),
            ),
            ll_fitness_evaluations=max(
                self.ll_population_size,
                int(self.ll_fitness_evaluations * factor),
            ),
        )


@dataclass(frozen=True)
class CobraConfig:
    """COBRA parameters (Table II, right column).

    The lower level evolves binary baskets: two-point crossover 0.85,
    swap mutation 1/#variables, binary tournament.
    """

    upper: UpperLevelConfig = field(default_factory=UpperLevelConfig)
    ll_population_size: int = 100
    ll_archive_size: int = 100
    ll_fitness_evaluations: int = 50_000
    ll_crossover_probability: float = 0.85
    #: None means the Table II default 1/#variables.
    ll_mutation_probability: float | None = None
    #: Length of each improvement phase in generations — the knob the
    #: paper criticizes COBRA for (§V-B); ablated in the benches.
    improvement_generations: int = 5
    #: Feasibility-repair completion order for offspring baskets:
    #: "random" keeps the baseline neutral (no hand-written heuristic is
    #: smuggled in through repair); "chvatal"/"cost" are ablation options.
    ll_repair: str = "random"
    #: Whether repair also prunes redundant bundles.  Off by default for
    #: the same neutrality reason: redundancy elimination is an
    #: optimization the original binary-GA lower level does not perform —
    #: the GA itself must learn to drop dead weight.  Ablation option.
    ll_repair_prune: bool = False
    #: Fraction of each population re-paired by the co-evolution operator.
    coevolution_fraction: float = 0.25
    #: Evaluation substrate (executor kind, workers, memo) — results are
    #: executor-invariant; see :class:`ExecutionConfig`.
    execution: ExecutionConfig = field(default_factory=ExecutionConfig)
    #: Competitive evaluation mode (opponent pools); ``"current"`` is the
    #: exact historical behaviour.  See :class:`EvalModeConfig`.
    eval_mode: EvalModeConfig = field(default_factory=EvalModeConfig)

    def __post_init__(self) -> None:
        if self.ll_population_size < 2:
            raise ValueError("LL population must have >= 2 individuals")
        if self.improvement_generations < 1:
            raise ValueError("improvement_generations must be >= 1")
        if not (0.0 <= self.coevolution_fraction <= 1.0):
            raise ValueError("coevolution_fraction out of [0, 1]")
        if self.ll_repair not in ("random", "chvatal", "cost"):
            raise ValueError(f"unknown ll_repair {self.ll_repair!r}")

    @classmethod
    def paper(cls) -> "CobraConfig":
        """Table II verbatim."""
        return cls()

    @classmethod
    def quick(
        cls,
        ul_evaluations: int = 2_000,
        ll_evaluations: int = 2_000,
        population_size: int = 24,
    ) -> "CobraConfig":
        """Laptop/test-scale budget with the paper's operator ratios."""
        return cls(
            upper=UpperLevelConfig(
                population_size=population_size,
                archive_size=population_size,
                fitness_evaluations=ul_evaluations,
            ),
            ll_population_size=population_size,
            ll_archive_size=population_size,
            ll_fitness_evaluations=ll_evaluations,
            improvement_generations=3,
        )

    def scaled(self, factor: float) -> "CobraConfig":
        """Multiply both evaluation budgets by ``factor``."""
        return replace(
            self,
            upper=replace(
                self.upper,
                fitness_evaluations=max(
                    self.upper.population_size,
                    int(self.upper.fitness_evaluations * factor),
                ),
            ),
            ll_fitness_evaluations=max(
                self.ll_population_size,
                int(self.ll_fitness_evaluations * factor),
            ),
        )
