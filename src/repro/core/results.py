"""Result containers shared by the algorithms and the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.convergence import ConvergenceHistory

__all__ = ["BilevelSolution", "RunResult", "SUMMARY_FIELDS", "solution_from_entry"]

#: The flat per-run schema shared by :meth:`RunResult.summary_row` and the
#: JSONL run logger (tests/test_engine_observers.py pins the contract).
SUMMARY_FIELDS = (
    "algorithm",
    "instance",
    "seed",
    "best_gap",
    "best_upper",
    "ul_evals",
    "ll_evals",
    "wall_time",
)


@dataclass(frozen=True)
class BilevelSolution:
    """One paired bi-level solution as the extraction protocol reports it.

    ``gap`` measures how close the paired lower-level reaction is to
    rational (Eq. 1); ``upper_objective`` is the leader revenue under that
    (possibly irrational) reaction — the paper's Tables III and IV are
    exactly these two numbers.
    """

    prices: np.ndarray
    selection: np.ndarray
    upper_objective: float
    lower_objective: float
    gap: float
    lower_bound: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "prices", np.asarray(self.prices, dtype=np.float64))
        object.__setattr__(self, "selection", np.asarray(self.selection, dtype=bool))


@dataclass
class RunResult:
    """Outcome of one independent algorithm run on one instance.

    ``best_gap`` / ``best_upper`` follow §V-B's extraction protocol: the
    best values over the final archive ("we recorded the best results in
    terms of %-gap and upper-level fitness value").
    """

    algorithm: str
    instance_name: str
    seed: int
    best_gap: float
    best_upper: float
    best_solution: BilevelSolution
    history: ConvergenceHistory
    ul_evaluations_used: int
    ll_evaluations_used: int
    wall_time: float = 0.0
    extras: dict = field(default_factory=dict)

    @staticmethod
    def flat_row(**values) -> dict:
        """Build a :data:`SUMMARY_FIELDS`-shaped dict; raises on any
        missing or extra key so producers cannot drift from the schema."""
        if set(values) != set(SUMMARY_FIELDS):
            missing = set(SUMMARY_FIELDS) - set(values)
            extra = set(values) - set(SUMMARY_FIELDS)
            raise ValueError(
                f"summary row mismatch: missing {sorted(missing)}, extra {sorted(extra)}"
            )
        return {key: values[key] for key in SUMMARY_FIELDS}

    def summary_row(self) -> dict:
        """Flat dict for table building (schema: :data:`SUMMARY_FIELDS`)."""
        return self.flat_row(
            algorithm=self.algorithm,
            instance=self.instance_name,
            seed=self.seed,
            best_gap=self.best_gap,
            best_upper=self.best_upper,
            ul_evals=self.ul_evaluations_used,
            ll_evals=self.ll_evaluations_used,
            wall_time=self.wall_time,
        )


def solution_from_entry(
    entry, n_bundles: int, lower_cost_key: str = "ll_cost"
) -> BilevelSolution:
    """Build a :class:`BilevelSolution` from a best archive entry.

    The §V-B extraction block that CARBON, the nested/surrogate
    baselines, the tri-level study and the island topology all used to
    copy-paste: prices are the archived item, everything else comes from
    the evaluation side data stored in ``entry.aux`` (missing keys
    degrade to NaN / an empty selection, e.g. for runs whose best entry
    predates feasibility).
    """
    aux = entry.aux
    return BilevelSolution(
        prices=entry.item,
        selection=aux.get("selection", np.zeros(n_bundles, dtype=bool)),
        upper_objective=entry.score,
        lower_objective=aux.get(lower_cost_key, np.nan),
        gap=aux.get("gap", np.nan),
        lower_bound=aux.get("lower_bound", np.nan),
    )
