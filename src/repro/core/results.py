"""Result containers shared by the algorithms and the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.convergence import ConvergenceHistory

__all__ = ["BilevelSolution", "RunResult"]


@dataclass(frozen=True)
class BilevelSolution:
    """One paired bi-level solution as the extraction protocol reports it.

    ``gap`` measures how close the paired lower-level reaction is to
    rational (Eq. 1); ``upper_objective`` is the leader revenue under that
    (possibly irrational) reaction — the paper's Tables III and IV are
    exactly these two numbers.
    """

    prices: np.ndarray
    selection: np.ndarray
    upper_objective: float
    lower_objective: float
    gap: float
    lower_bound: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "prices", np.asarray(self.prices, dtype=np.float64))
        object.__setattr__(self, "selection", np.asarray(self.selection, dtype=bool))


@dataclass
class RunResult:
    """Outcome of one independent algorithm run on one instance.

    ``best_gap`` / ``best_upper`` follow §V-B's extraction protocol: the
    best values over the final archive ("we recorded the best results in
    terms of %-gap and upper-level fitness value").
    """

    algorithm: str
    instance_name: str
    seed: int
    best_gap: float
    best_upper: float
    best_solution: BilevelSolution
    history: ConvergenceHistory
    ul_evaluations_used: int
    ll_evaluations_used: int
    wall_time: float = 0.0
    extras: dict = field(default_factory=dict)

    def summary_row(self) -> dict:
        """Flat dict for table building."""
        return {
            "algorithm": self.algorithm,
            "instance": self.instance_name,
            "seed": self.seed,
            "best_gap": self.best_gap,
            "best_upper": self.best_upper,
            "ul_evals": self.ul_evaluations_used,
            "ll_evals": self.ll_evaluations_used,
            "wall_time": self.wall_time,
        }
