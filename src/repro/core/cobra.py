"""COBRA baseline (Legillon, Liefooghe, Talbi, CEC 2012 — Algorithm 1).

Two *decision-vector* populations co-evolve: continuous pricing vectors at
the upper level and binary baskets at the lower level, with the Table II
operator suite (binary tournament / SBX / polynomial mutation above,
binary tournament / two-point crossover / swap mutation below).

Pairing model
-------------
Algorithm 1 creates one population of full ``(x, y)`` solutions and splits
it by level, so pairing is *live and positional*: individual ``i`` of the
upper population is always coupled with individual ``i`` of the lower
population.  Fitness reads the partner at evaluation time —
``F(x_i, y_i)`` above (a dot product, no lower-level solve),
``f(x_i, y_i)`` below.  Because each improvement phase mutates one side
while the other is frozen, fitnesses go stale across phases; each phase
therefore starts by re-evaluating its population against the partners as
they now are (evaluations counted against the budget).  Per-level
selection and the explicit co-evolution operator (random partner
shuffling) both reshuffle pairings.

This faithful structure reproduces the two pathologies the paper analyses:

* *overestimation* (Table IV, Eq. 2-3): upper-level selection maximizes
  revenue jointly over prices *and* over the baskets the pairing roulette
  serves up — suboptimal baskets buying many leader bundles at inflated
  prices win tournaments, so the archive's best F is an optimistic
  relaxation of the rational payoff;
* *see-saw convergence* (Fig. 5): each phase improves its own level
  against stale partners and each phase boundary re-anchors fitnesses
  downward — "each improvement phase deteriorates the other level".

Good-faith treatment: lower-level offspring are repaired to feasibility
(neutral random-completion by default, so no hand-written heuristic is
smuggled into the baseline; configurable for ablations).
"""

from __future__ import annotations

import numpy as np

from repro.bcpop.evaluate import EvaluationPipeline
from repro.bcpop.instance import BcpopInstance
from repro.parallel.executor import Executor
from repro.core.archive import Archive
from repro.core.config import CobraConfig
from repro.core.engine import EngineAlgorithm, EngineLoop
from repro.core.results import BilevelSolution, RunResult
from repro.covering.repair import repair_cover
from repro.ga.encoding import Bounds
from repro.ga.operators import (
    polynomial_mutation,
    sbx_crossover,
    swap_mutation,
    two_point_crossover,
)
from repro.ga.population import Individual
from repro.ga.selection import binary_tournament

__all__ = ["Cobra", "run_cobra"]


class Cobra(EngineAlgorithm):
    """One COBRA run on one BCPOP instance (see module docstring)."""

    def __init__(
        self,
        instance: BcpopInstance,
        config: CobraConfig | None = None,
        rng: np.random.Generator | None = None,
        lp_backend: str = "scipy",
        executor: Executor | None = None,
    ) -> None:
        self.instance = instance
        self.config = config or CobraConfig.paper()
        execution = self.config.execution
        self.rng = self._init_rng(rng, execution, component="cobra")
        self.evaluator = instance.make_evaluator(
            lp_backend=lp_backend,
            memo_size=execution.memo_size,
            compile=execution.compile,
            lp_warm_start=execution.lp_warm_start,
        )
        if execution.profile_hot_path:
            self.evaluator.timers.enabled = True
        # COBRA's per-individual fitness is a dot product — the expensive
        # part is the LP relaxation behind each archived pairing's %-gap,
        # so the pipeline is used to *prefetch* relaxations in parallel
        # (a pure latency optimization: values are identical either way).
        self._owns_executor = executor is None
        self.executor = executor if executor is not None else execution.make_executor()
        self.pipeline = EvaluationPipeline(
            self.evaluator,
            self.executor,
            batches_per_worker=execution.batches_per_worker,
        )
        self.bounds = Bounds(*instance.price_bounds)

        self._engine_init(
            self.config.upper.fitness_evaluations, self.config.ll_fitness_evaluations
        )
        self._init_eval_mode(self.config.eval_mode)
        self.upper_archive = Archive(self.config.upper.archive_size, minimize=False)
        self.lower_archive = Archive(self.config.ll_archive_size, minimize=True)
        # Live positional pairing: pop_u[i] is coupled with pop_l[i].
        self.n_pairs = max(
            self.config.upper.population_size, self.config.ll_population_size
        )
        self.pop_u: list[Individual] = []
        self.pop_l: list[Individual] = []

    # -- engine surface ----------------------------------------------------

    @property
    def name(self) -> str:
        return "COBRA"

    # -- budgets (ledger views kept for callers and benches) ---------------

    @property
    def ul_used(self) -> int:
        return self.ledger.upper.used

    @property
    def ll_used(self) -> int:
        return self.ledger.lower.used

    @property
    def ul_budget_left(self) -> int:
        return self.ledger.upper.left

    @property
    def ll_budget_left(self) -> int:
        return self.ledger.lower.left

    # -- pairing / evaluation -------------------------------------------------

    def _anchor_upper(self) -> None:
        """Refresh every upper individual's partner to the lower
        population's current state (positional) — the phase-boundary
        re-coupling that produces the see-saw's downward strokes."""
        for i, ind in enumerate(self.pop_u):
            ind.aux["partner"] = self.pop_l[i % len(self.pop_l)].genome.copy()
            if not self._eval_upper(ind):
                ind.fitness = -np.inf

    def _anchor_lower(self) -> None:
        for i, ind in enumerate(self.pop_l):
            ind.aux["partner"] = self.pop_u[i % len(self.pop_u)].genome.copy()
            if not self._eval_lower(ind):
                ind.fitness = np.inf

    def _eval_upper(self, ind: Individual) -> bool:
        """F(x, y_partner): leader revenue for the carried basket —
        COBRA's core shortcut (no lower-level solve)."""
        if self.ledger.upper.exhausted:
            return False
        partner = ind.aux["partner"]
        ind.fitness = self.instance.revenue(ind.genome, partner)
        self.ledger.charge(upper=1)
        self.upper_archive.add(
            ind.genome.copy(), ind.fitness, aux={"partner": partner.copy()}
        )
        return True

    def _eval_lower(self, ind: Individual) -> bool:
        """f(x_partner, y): follower cost under the carried prices."""
        if self.ledger.lower.exhausted:
            return False
        partner = ind.aux["partner"]
        ind.fitness = self.instance.lower_level(partner).cost_of(ind.genome)
        self.ledger.charge(lower=1)
        return True

    def _pair_gap(self, prices: np.ndarray, basket: np.ndarray) -> float:
        """%-gap of a pairing (LP relaxation cached per price vector)."""
        relax = self.evaluator.relaxation(prices)
        cost = self.instance.lower_level(prices).cost_of(basket)
        return relax.percent_gap(cost)

    # -- phases (Algorithm 1, line 5) ----------------------------------------

    def _upper_improvement(self) -> None:
        cfg = self.config.upper
        # Phase boundary: re-couple with the baskets as the lower phase
        # left them — this is the see-saw's downward stroke.
        self._anchor_upper()
        self.record_point()
        for _ in range(self.config.improvement_generations):
            if self.ul_budget_left <= 0:
                break
            fits = [i.fitness for i in self.pop_u]
            mates = binary_tournament(self.pop_u, fits, len(self.pop_u), self.rng)
            offspring: list[Individual] = []
            for i in range(0, len(mates) - 1, 2):
                p1, p2 = mates[i], mates[i + 1]
                g1, g2 = p1.genome, p2.genome
                if self.rng.random() < cfg.crossover_probability:
                    g1, g2 = sbx_crossover(g1, g2, self.bounds, self.rng, eta=cfg.sbx_eta)
                # Offspring inherit the parent's carried basket, so within
                # a phase selection consistently exploits lucky pairings —
                # the overestimation channel.
                offspring.append(
                    Individual(genome=g1.copy(), aux={"partner": p1.aux["partner"]})
                )
                offspring.append(
                    Individual(genome=g2.copy(), aux={"partner": p2.aux["partner"]})
                )
            if len(mates) % 2:
                last = mates[-1]
                offspring.append(
                    Individual(
                        genome=last.genome.copy(), aux={"partner": last.aux["partner"]}
                    )
                )
            offspring = offspring[: len(self.pop_u) - 1]
            elite = max(self.pop_u, key=lambda x: x.fitness).copy()
            for ind in offspring:
                ind.genome = polynomial_mutation(
                    ind.genome, self.bounds, self.rng,
                    eta=cfg.polynomial_eta,
                    per_gene_probability=cfg.mutation_probability,
                )
                if not self._eval_upper(ind):
                    ind.fitness = -np.inf
            self.pop_u = offspring + [elite]
            self.record_point()

    def _lower_improvement(self) -> None:
        cfg = self.config
        mut_p = cfg.ll_mutation_probability
        self._anchor_lower()
        self.record_point()
        for _ in range(cfg.improvement_generations):
            if self.ll_budget_left <= 0:
                break
            fits = [i.fitness for i in self.pop_l]
            mates = binary_tournament(
                self.pop_l, fits, len(self.pop_l), self.rng, minimize=True
            )
            offspring: list[Individual] = []
            for i in range(0, len(mates) - 1, 2):
                p1, p2 = mates[i], mates[i + 1]
                g1, g2 = p1.genome, p2.genome
                if self.rng.random() < cfg.ll_crossover_probability:
                    g1, g2 = two_point_crossover(g1, g2, self.rng)
                else:
                    g1, g2 = g1.copy(), g2.copy()
                offspring.append(Individual(genome=g1, aux={"partner": p1.aux["partner"]}))
                offspring.append(Individual(genome=g2, aux={"partner": p2.aux["partner"]}))
            if len(mates) % 2:
                last = mates[-1]
                offspring.append(
                    Individual(
                        genome=last.genome.copy(), aux={"partner": last.aux["partner"]}
                    )
                )
            offspring = offspring[: len(self.pop_l) - 1]
            elite = min(self.pop_l, key=lambda x: x.fitness).copy()
            for ind in offspring:
                ind.genome = swap_mutation(ind.genome, self.rng, per_gene_probability=mut_p)
                ll = self.instance.lower_level(ind.aux["partner"])
                if not ll.is_feasible(ind.genome):
                    ind.genome = repair_cover(
                        ll, ind.genome, order=cfg.ll_repair, rng=self.rng,
                        prune=cfg.ll_repair_prune,
                    )
                if not self._eval_lower(ind):
                    ind.fitness = np.inf
            self.pop_l = offspring + [elite]
            self.record_point()

    # -- Algorithm 1, lines 6-9 ----------------------------------------------

    def _archive(self) -> None:
        """Line 6: archive both populations with their current partners;
        lower entries also record their %-gap (the Table III measure)."""
        # Solve the uncached relaxations behind this generation's %-gaps
        # on the worker pool before the serial archive loop reads them.
        self.pipeline.prefetch_relaxations(
            [
                ind.aux["partner"]
                for ind in self.pop_l
                if np.isfinite(ind.fitness)
            ]
        )
        for ind in self.pop_u:
            if np.isfinite(ind.fitness):
                self.upper_archive.add(
                    ind.genome.copy(),
                    ind.fitness,
                    aux={"partner": ind.aux["partner"].copy()},
                )
        for ind in self.pop_l:
            if not np.isfinite(ind.fitness):
                continue
            partner = ind.aux["partner"]
            gap = self._pair_gap(partner, ind.genome)
            self.lower_archive.add(
                ind.genome.copy(), ind.fitness,
                aux={"partner": partner.copy(), "gap": gap},
            )
        self._record_adversaries()

    def _record_adversaries(self) -> None:
        """Offer this generation's best of each side to the evaluation
        mode's opponent pools (no-op under ``current``)."""
        if self.eval_mode.is_current:
            return
        finite_u = [ind for ind in self.pop_u if np.isfinite(ind.fitness)]
        if finite_u:
            best_u = max(finite_u, key=lambda ind: ind.fitness)
            self.eval_mode.record_upper(
                best_u.genome.copy(), best_u.fitness, self.generation
            )
        finite_l = [ind for ind in self.pop_l if np.isfinite(ind.fitness)]
        if finite_l:
            best_l = min(finite_l, key=lambda ind: ind.fitness)
            self.eval_mode.record_lower(
                best_l.genome.copy(), best_l.fitness, self.generation
            )

    def _selection(self) -> None:
        """Line 7: tournament-rebuild both populations (this implicitly
        reshuffles the positional pairings — part of the exchange)."""
        fits_u = [i.fitness for i in self.pop_u]
        self.pop_u = [
            ind.copy()
            for ind in binary_tournament(self.pop_u, fits_u, len(self.pop_u), self.rng)
        ]
        fits_l = [i.fitness for i in self.pop_l]
        self.pop_l = [
            ind.copy()
            for ind in binary_tournament(
                self.pop_l, fits_l, len(self.pop_l), self.rng, minimize=True
            )
        ]

    def _coevolution(self) -> None:
        """Line 8: random re-pairing — a fraction of each population gets a
        fresh partner drawn from the other side and is re-evaluated against
        it (evaluations counted) — the explicit exchange operator.

        Under non-``current`` evaluation modes the fresh partner comes
        from the mode's opponent pool when it has members (archived
        adversaries — so re-pairing also replays past regimes), falling
        back to the live population draw; under ``current`` the archived
        branch never triggers and no extra RNG is consumed."""
        k_u = int(self.config.coevolution_fraction * len(self.pop_u))
        for idx in self.rng.choice(len(self.pop_u), size=k_u, replace=False):
            archived = self.eval_mode.opponent("lower", self.rng)
            if archived is not None:
                self.pop_u[idx].aux["partner"] = archived.copy()
            else:
                mate = self.pop_l[self.rng.integers(len(self.pop_l))]
                self.pop_u[idx].aux["partner"] = mate.genome.copy()
            if not self._eval_upper(self.pop_u[idx]):
                break
        k_l = int(self.config.coevolution_fraction * len(self.pop_l))
        for idx in self.rng.choice(len(self.pop_l), size=k_l, replace=False):
            archived = self.eval_mode.opponent("upper", self.rng)
            if archived is not None:
                self.pop_l[idx].aux["partner"] = archived.copy()
            else:
                mate = self.pop_u[self.rng.integers(len(self.pop_u))]
                self.pop_l[idx].aux["partner"] = mate.genome.copy()
            if not self._eval_lower(self.pop_l[idx]):
                break

    def _inject_archives(self) -> None:
        """Line 9: replace the worst members with archive elites."""
        n_inject = max(1, len(self.pop_u) // 10)
        elites_u = self.upper_archive.top(n_inject)
        self.pop_u.sort(key=lambda i: i.fitness if np.isfinite(i.fitness) else -np.inf)
        for i, entry in enumerate(elites_u[: len(self.pop_u)]):
            self.pop_u[i] = Individual(
                genome=entry.item.copy(), fitness=entry.score,
                aux={"partner": entry.aux["partner"].copy()},
            )
        elites_l = self.lower_archive.top(n_inject)
        self.pop_l.sort(
            key=lambda i: -i.fitness if np.isfinite(i.fitness) else -np.inf
        )
        for i, entry in enumerate(elites_l[: len(self.pop_l)]):
            self.pop_l[i] = Individual(
                genome=entry.item.copy(), fitness=entry.score,
                aux={"partner": entry.aux["partner"].copy()},
            )

    def generation_metrics(self) -> dict[str, float]:
        finite_u = [i.fitness for i in self.pop_u if np.isfinite(i.fitness)]
        best_f = max(finite_u) if finite_u else np.nan
        finite_l = [ind for ind in self.pop_l if np.isfinite(ind.fitness)]
        if finite_l:
            best_l = min(finite_l, key=lambda ind: ind.fitness)
            best_gap = self._pair_gap(best_l.aux["partner"], best_l.genome)
            mean_gap = best_gap
        else:
            best_gap = mean_gap = np.nan
        return {"best_fitness": best_f, "best_gap": best_gap, "mean_gap": mean_gap}

    # -- main loop -----------------------------------------------------------

    def initialize(self) -> None:
        """Algorithm 1 lines 1-3: one joint population of (x, y) pairs,
        split by level with live positional pairing."""
        cfg = self.config
        n = self.n_pairs
        prices = [self.bounds.sample(self.rng) for _ in range(n)]
        baskets = []
        for i in range(n):
            raw = self.rng.random(self.instance.n_bundles) < 0.3
            ll = self.instance.lower_level(prices[i])
            baskets.append(
                repair_cover(
                    ll, raw, order=cfg.ll_repair, rng=self.rng,
                    prune=cfg.ll_repair_prune,
                )
            )
        self.pop_u = [
            Individual(genome=prices[i], aux={"partner": baskets[i].copy()})
            for i in range(n)
        ]
        self.pop_l = [
            Individual(genome=baskets[i], aux={"partner": prices[i].copy()})
            for i in range(n)
        ]
        for ind in self.pop_l:
            if not self._eval_lower(ind):
                ind.fitness = np.inf
        for ind in self.pop_u:
            if not self._eval_upper(ind):
                ind.fitness = -np.inf
        self.record_point()

    def step(self) -> bool:
        """One outer iteration of Algorithm 1; False when budgets are gone."""
        if self.ledger.exhausted:
            return False
        self._upper_improvement()
        self._lower_improvement()
        self._archive()
        self._selection()
        self._coevolution()
        self._inject_archives()
        return True

    # -- extraction ----------------------------------------------------------

    def extract_result(self, seed_label: int, wall_time: float) -> RunResult:
        """Extract per §V-B (lower archive for the %-gap, upper archive
        for the upper-level fitness).

        COBRA keeps its bespoke extraction (unlike the other algorithms,
        which share :func:`repro.core.results.solution_from_entry`): the
        paired basket's cost, gap and bound are *computed* here from the
        archived pairing, not read from evaluation side data.
        """
        best_u = self.upper_archive.best()
        gaps = [
            e.aux["gap"]
            for e in self.lower_archive.entries()
            if np.isfinite(e.aux.get("gap", np.inf))
        ]
        best_gap = min(gaps) if gaps else np.inf
        partner_basket = best_u.aux["partner"]
        solution = BilevelSolution(
            prices=best_u.item,
            selection=partner_basket,
            upper_objective=best_u.score,
            lower_objective=self.instance.lower_level(best_u.item).cost_of(partner_basket),
            gap=self._pair_gap(best_u.item, partner_basket),
            lower_bound=self.evaluator.relaxation(best_u.item).lower_bound,
        )
        return RunResult(
            algorithm=self.name,
            instance_name=self.instance.name,
            seed=seed_label,
            best_gap=best_gap,
            best_upper=best_u.score,
            best_solution=solution,
            history=self.history,
            ul_evaluations_used=self.ul_used,
            ll_evaluations_used=self.ll_used,
            wall_time=wall_time,
            extras={
                "lp_cache": self.evaluator.cache_stats,
                "pipeline": self.pipeline.stats,
                "eval_mode": self.eval_mode.mode,
                "opponent_pools": {
                    "upper": len(self.eval_mode.upper_pool),
                    "lower": len(self.eval_mode.lower_pool),
                },
            },
        )

    # -- checkpointing -------------------------------------------------------

    def _state_payload(self) -> dict:
        return {
            "pop_u": list(self.pop_u),
            "pop_l": list(self.pop_l),
            "upper_archive": self.upper_archive.state_dict(),
            "lower_archive": self.lower_archive.state_dict(),
            "eval_mode": self.eval_mode.state_dict(),
        }

    def _load_payload(self, payload: dict) -> None:
        self.pop_u = list(payload["pop_u"])
        self.pop_l = list(payload["pop_l"])
        self.upper_archive.load_state_dict(payload["upper_archive"])
        self.lower_archive.load_state_dict(payload["lower_archive"])
        mode_state = payload.get("eval_mode")  # absent in pre-mode checkpoints
        if mode_state is not None:
            self.eval_mode.load_state_dict(mode_state)


def run_cobra(
    instance: BcpopInstance,
    config: CobraConfig | None = None,
    seed: int = 0,
    lp_backend: str = "scipy",
    executor: Executor | None = None,
    observers=(),
    resume_state: dict | None = None,
) -> RunResult:
    """Convenience wrapper: one seeded, engine-driven COBRA run."""
    algorithm = Cobra(
        instance, config=config, rng=np.random.default_rng(seed),
        lp_backend=lp_backend, executor=executor,
    )
    return EngineLoop(algorithm, observers=observers, resume_state=resume_state).run(
        seed_label=seed
    )
